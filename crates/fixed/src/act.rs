//! Activation functions in float and fixed-point form.
//!
//! Table 6 of the paper benchmarks nine activation implementations on the
//! MapReduce block; each trades area/latency for accuracy differently:
//!
//! | name        | strategy                              |
//! |-------------|---------------------------------------|
//! | `ReLU`      | max(0, x) — one select stage          |
//! | `LeakyReLU` | select + one multiply                 |
//! | `TanhExp`   | range-reduced exponential series      |
//! | `SigmoidExp`| range-reduced exponential series      |
//! | `TanhPW`    | piecewise-linear approximation        |
//! | `SigmoidPW` | piecewise-linear approximation        |
//! | `ActLUT`    | 1024-entry lookup table (see [`crate::lut`]) |
//!
//! The fixed-point variants here operate on [`Q32`] values so they can run
//! on the wide intermediate path of a CU before requantization; each
//! documents the operation count the compiler uses when mapping it to CU
//! stages.

use serde::{Deserialize, Serialize};

use crate::q::Q32;

/// Fractional bits used by the wide fixed-point activation path.
pub const ACT_FRAC: u32 = 16;
/// The Q-format used by fixed-point activation evaluation.
pub type ActQ = Q32<ACT_FRAC>;

/// The activation functions supported by the Taurus datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Identity,
    /// `max(0, x)`.
    Relu,
    /// `x > 0 ? x : slope·x` with slope 1/8 (a power of two, so the
    /// multiply is a shift in hardware).
    LeakyRelu,
    /// Tanh via range-reduced exponential series (`TanhExp` in Table 6).
    TanhExp,
    /// Sigmoid via range-reduced exponential series (`SigmoidExp`).
    SigmoidExp,
    /// Tanh via piecewise-linear approximation (`TanhPW`).
    TanhPw,
    /// Sigmoid via piecewise-linear approximation (`SigmoidPW`).
    SigmoidPw,
    /// Lookup-table activation (`ActLUT`); the table contents decide the
    /// function — see [`crate::lut::ActLut`].
    Lut,
}

impl Activation {
    /// Float reference for this activation (LUT evaluates as tanh, its
    /// default table).
    pub fn eval_f32(&self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => relu_f32(x),
            Activation::LeakyRelu => leaky_relu_f32(x),
            Activation::TanhExp | Activation::TanhPw | Activation::Lut => tanh_f32(x),
            Activation::SigmoidExp | Activation::SigmoidPw => sigmoid_f32(x),
        }
    }

    /// Fixed-point evaluation on the wide datapath.
    pub fn eval_q(&self, x: ActQ) -> ActQ {
        match self {
            Activation::Identity => x,
            Activation::Relu => relu_q(x),
            Activation::LeakyRelu => leaky_relu_q(x),
            Activation::TanhExp => tanh_exp_q(x),
            Activation::SigmoidExp => sigmoid_exp_q(x),
            Activation::TanhPw => tanh_pw_q(x),
            Activation::SigmoidPw => sigmoid_pw_q(x),
            Activation::Lut => crate::lut::ActLut::tanh().eval_q(x),
        }
    }
}

/// `max(0, x)` in float.
#[inline]
pub fn relu_f32(x: f32) -> f32 {
    x.max(0.0)
}

/// Leaky ReLU with slope 1/8 in float.
#[inline]
pub fn leaky_relu_f32(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        x * 0.125
    }
}

/// `tanh` float reference.
#[inline]
pub fn tanh_f32(x: f32) -> f32 {
    x.tanh()
}

/// Logistic sigmoid float reference.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Fixed-point ReLU: one `max` op (1 CU stage).
#[inline]
pub fn relu_q(x: ActQ) -> ActQ {
    x.max(ActQ::ZERO)
}

/// Fixed-point leaky ReLU: shift + select (2 CU stages).
#[inline]
pub fn leaky_relu_q(x: ActQ) -> ActQ {
    if x > ActQ::ZERO {
        x
    } else {
        ActQ::from_raw(x.raw() >> 3)
    }
}

/// Fixed-point `exp` on `[-1, 0]` via a 5-term Taylor series.
///
/// Inputs outside the domain are clamped. Max error ≤ 2e-3, which is below
/// one int8 quantization step of the final output.
fn exp_unit_q(x: ActQ) -> ActQ {
    let x = x.max(ActQ::from_f32(-1.0)).min(ActQ::ZERO);
    // Horner: 1 + x(1 + x/2(1 + x/3(1 + x/4))).
    let quarter = ActQ::from_f32(0.25);
    let third = ActQ::from_f32(1.0 / 3.0);
    let half = ActQ::from_f32(0.5);
    let one = ActQ::ONE;
    let t4 = one + x * quarter;
    let t3 = one + x * third * t4;
    let t2 = one + x * half * t3;
    one + x * t2
}

/// Fixed-point `exp(-|x|)` with range reduction: `exp(-x) = exp(-f)·2^{-k}`
/// where `x = k + f`, `f ∈ [0, 1)`. Powers of two are shifts in hardware.
fn exp_neg_q(x_abs: ActQ) -> ActQ {
    let clamped = x_abs.min(ActQ::from_f32(15.0));
    let k = (clamped.raw() >> ACT_FRAC) as u32; // integer part
    let frac = ActQ::from_raw(clamped.raw() - ((k as i32) << ACT_FRAC));
    // exp(-frac) via the series, then shift by k. ln2 scaling is folded by
    // using base-e reduction with integer steps: exp(-k-f)=exp(-f)·exp(-1)^k.
    let e_frac = exp_unit_q(-frac);
    let e_inv = ActQ::from_f32(core::f32::consts::E.recip());
    let mut result = e_frac;
    for _ in 0..k {
        result = result * e_inv;
    }
    result
}

/// Fixed-point sigmoid via the exponential series (`SigmoidExp`):
/// `σ(x) = 1 / (1 + exp(-x))`, with `σ(-x) = 1 - σ(x)` symmetry.
pub fn sigmoid_exp_q(x: ActQ) -> ActQ {
    let neg = x < ActQ::ZERO;
    let e = exp_neg_q(x.saturating_abs());
    let pos = ActQ::ONE.saturating_div(ActQ::ONE + e);
    if neg {
        ActQ::ONE - pos
    } else {
        pos
    }
}

/// Fixed-point tanh via the exponential series (`TanhExp`):
/// `tanh(x) = 2σ(2x) − 1`.
pub fn tanh_exp_q(x: ActQ) -> ActQ {
    let two_x = ActQ::from_raw(x.raw().saturating_mul(2));
    let s = sigmoid_exp_q(two_x);
    ActQ::from_raw(s.raw().saturating_mul(2)) - ActQ::ONE
}

/// Piecewise-linear sigmoid (`SigmoidPW`), 5 segments:
/// hard limits beyond |x| ≥ 4 and slope-matched segments within.
pub fn sigmoid_pw_q(x: ActQ) -> ActQ {
    let one = ActQ::ONE;
    let half = ActQ::from_f32(0.5);
    let x_abs = x.saturating_abs();
    let y_abs = if x_abs >= ActQ::from_f32(4.0) {
        one
    } else if x_abs >= ActQ::from_f32(2.0) {
        // 0.88 + 0.05·(x−2)
        ActQ::from_f32(0.88) + ActQ::from_f32(0.05) * (x_abs - ActQ::from_f32(2.0))
    } else if x_abs >= ActQ::from_f32(1.0) {
        // 0.73 + 0.15·(x−1)
        ActQ::from_f32(0.73) + ActQ::from_f32(0.15) * (x_abs - ActQ::ONE)
    } else {
        // 0.5 + 0.23·x
        half + ActQ::from_f32(0.23) * x_abs
    };
    if x < ActQ::ZERO {
        one - y_abs
    } else {
        y_abs
    }
}

/// Piecewise-linear tanh (`TanhPW`), odd-symmetric 4-segment version.
pub fn tanh_pw_q(x: ActQ) -> ActQ {
    let x_abs = x.saturating_abs();
    let y_abs = if x_abs >= ActQ::from_f32(2.5) {
        ActQ::ONE
    } else if x_abs >= ActQ::from_f32(1.25) {
        ActQ::from_f32(0.84828) + ActQ::from_f32(0.12) * (x_abs - ActQ::from_f32(1.25))
    } else if x_abs >= ActQ::from_f32(0.5) {
        ActQ::from_f32(0.46212) + ActQ::from_f32(0.515) * (x_abs - ActQ::from_f32(0.5))
    } else {
        ActQ::from_f32(0.92424) * x_abs
    };
    if x < ActQ::ZERO {
        -y_abs
    } else {
        y_abs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(x: f32) -> ActQ {
        ActQ::from_f32(x)
    }

    #[test]
    fn relu_matches_reference() {
        // Values exactly representable in Q32<16>.
        for x in [-3.0f32, -0.125, 0.0, 0.125, 5.0] {
            assert_eq!(relu_q(q(x)).to_f32(), relu_f32(x));
        }
    }

    #[test]
    fn leaky_relu_uses_eighth_slope() {
        assert_eq!(leaky_relu_q(q(-8.0)).to_f32(), -1.0);
        assert_eq!(leaky_relu_q(q(4.0)).to_f32(), 4.0);
        assert_eq!(leaky_relu_f32(-8.0), -1.0);
    }

    #[test]
    fn sigmoid_exp_accuracy() {
        for i in -60..=60 {
            let x = i as f32 / 10.0;
            let err = (sigmoid_exp_q(q(x)).to_f32() - sigmoid_f32(x)).abs();
            assert!(err < 0.01, "x={x} err={err}");
        }
    }

    #[test]
    fn tanh_exp_accuracy() {
        for i in -60..=60 {
            let x = i as f32 / 10.0;
            let err = (tanh_exp_q(q(x)).to_f32() - tanh_f32(x)).abs();
            assert!(err < 0.02, "x={x} err={err}");
        }
    }

    #[test]
    fn sigmoid_pw_coarse_accuracy() {
        // Piecewise versions trade accuracy for area: tolerance one int8 step
        // of the output range (1/255 ≈ 0.004) times a few segments ≈ 0.03.
        for i in -80..=80 {
            let x = i as f32 / 10.0;
            let err = (sigmoid_pw_q(q(x)).to_f32() - sigmoid_f32(x)).abs();
            assert!(err < 0.035, "x={x} err={err}");
        }
    }

    #[test]
    fn tanh_pw_coarse_accuracy() {
        for i in -80..=80 {
            let x = i as f32 / 10.0;
            let err = (tanh_pw_q(q(x)).to_f32() - tanh_f32(x)).abs();
            assert!(err < 0.05, "x={x} err={err}");
        }
    }

    #[test]
    fn activations_saturate_sanely_at_extremes() {
        assert!((sigmoid_exp_q(q(20.0)).to_f32() - 1.0).abs() < 0.01);
        assert!(sigmoid_exp_q(q(-20.0)).to_f32() < 0.01);
        assert!((tanh_exp_q(q(20.0)).to_f32() - 1.0).abs() < 0.02);
        assert!((tanh_exp_q(q(-20.0)).to_f32() + 1.0).abs() < 0.02);
    }

    #[test]
    fn enum_dispatch_agrees_with_free_functions() {
        let x = q(0.7);
        assert_eq!(Activation::Relu.eval_q(x), relu_q(x));
        assert_eq!(Activation::TanhPw.eval_q(x), tanh_pw_q(x));
        assert_eq!(Activation::SigmoidExp.eval_q(x), sigmoid_exp_q(x));
        assert_eq!(Activation::Identity.eval_q(x), x);
    }

    proptest! {
        #[test]
        fn prop_sigmoid_bounded_and_monotone(a in -10.0f32..10.0, b in -10.0f32..10.0) {
            let ya = sigmoid_exp_q(q(a));
            let yb = sigmoid_exp_q(q(b));
            prop_assert!(ya >= ActQ::ZERO && ya <= ActQ::ONE + ActQ::from_f32(0.01));
            if a + 0.05 < b {
                prop_assert!(ya <= yb + ActQ::from_f32(0.01), "a={a} b={b}");
            }
        }

        #[test]
        fn prop_tanh_odd_symmetry(x in -8.0f32..8.0) {
            let y = tanh_pw_q(q(x));
            let ny = tanh_pw_q(q(-x));
            prop_assert!((y.to_f32() + ny.to_f32()).abs() < 0.01);
        }

        #[test]
        fn prop_relu_idempotent(x in -100.0f32..100.0) {
            let once = relu_q(q(x));
            prop_assert_eq!(relu_q(once), once);
        }
    }
}
