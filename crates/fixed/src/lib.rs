//! Fixed-point arithmetic for the Taurus per-packet ML data plane.
//!
//! Taurus (ASPLOS 2022, §4–5.1.1) executes ML inference on 8-bit
//! fixed-point functional units: fixed-point hardware is smaller, faster,
//! and lower-power than floating point, and Table 3 of the paper shows the
//! accuracy loss from 8-bit quantization is negligible. This crate is the
//! numeric substrate shared by the IR interpreter, the CGRA simulator, and
//! the ML quantization pipeline:
//!
//! - [`q`]: saturating Q-format types ([`Q8`], [`Q16`], [`Q32`]) with
//!   const-generic fractional bit counts — the datapath element types.
//! - [`quant`]: per-tensor affine int8 quantization (scale + zero point,
//!   TensorFlow-Lite style) with integer-only requantization, used to
//!   lower trained float models onto the 8-bit datapath.
//! - [`act`]: the activation-function implementations benchmarked in
//!   Table 6 — ReLU, LeakyReLU, exponential-series tanh/sigmoid,
//!   piecewise-linear tanh/sigmoid, and 1024-entry lookup tables.
//! - [`lut`]: construction of the 1024×8-bit activation LUTs (§5.1.3).
//!
//! # Examples
//!
//! ```
//! use taurus_fixed::q::Q8;
//!
//! // Q8 with 4 fractional bits: resolution 1/16, range [-8, 7.9375].
//! let a = Q8::<4>::from_f32(1.5);
//! let b = Q8::<4>::from_f32(2.25);
//! assert_eq!((a * b).to_f32(), 3.375);
//! // Saturation instead of wrap-around:
//! let big = Q8::<4>::from_f32(7.0);
//! assert_eq!((big * big).to_f32(), Q8::<4>::MAX.to_f32());
//! ```

pub mod act;
pub mod lut;
pub mod q;
pub mod quant;

pub use act::{leaky_relu_f32, relu_f32, sigmoid_f32, tanh_f32, Activation};
pub use lut::ActLut;
pub use q::{Q16, Q32, Q8};
pub use quant::{QuantParams, QuantizedVec, Requantizer};
