//! 1024-entry activation lookup tables (`ActLUT`, Table 6).
//!
//! The paper's LUT activations store "pre-computed output values as 1024
//! 8-bit entries" (§5.1.3). A [`ActLut`] samples an arbitrary scalar
//! function over a symmetric input range into 1024 int8 codes; evaluation
//! is a clamp + index + load, which maps onto one MU access plus one CU
//! address-computation stage.

use serde::{Deserialize, Serialize};

use crate::act::{ActQ, ACT_FRAC};
use crate::quant::QuantParams;

/// Number of entries in a hardware activation LUT.
pub const LUT_ENTRIES: usize = 1024;

/// A 1024-entry 8-bit lookup table approximating a scalar function over
/// a symmetric input range `[-range, range]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActLut {
    table: Vec<i8>,
    /// Half-width of the covered input interval.
    input_range: f32,
    /// Quantization of the stored outputs.
    out_params: QuantParams,
}

impl ActLut {
    /// Samples `f` over `[-input_range, input_range]` into 1024 entries.
    ///
    /// Output codes are quantized over the observed output range.
    ///
    /// # Panics
    ///
    /// Panics if `input_range` is not finite and positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use taurus_fixed::lut::ActLut;
    /// let lut = ActLut::from_fn(|x| x.tanh(), 4.0);
    /// assert!((lut.eval_f32(0.5) - 0.5f32.tanh()).abs() < 0.02);
    /// ```
    pub fn from_fn(f: impl Fn(f32) -> f32, input_range: f32) -> Self {
        assert!(
            input_range.is_finite() && input_range > 0.0,
            "input_range must be finite and positive, got {input_range}"
        );
        let samples: Vec<f32> = (0..LUT_ENTRIES)
            .map(|i| {
                let x = -input_range + 2.0 * input_range * i as f32 / (LUT_ENTRIES - 1) as f32;
                f(x)
            })
            .collect();
        let out_params = QuantParams::from_values(&samples);
        let table = samples.iter().map(|&y| out_params.quantize(y)).collect();
        Self { table, input_range, out_params }
    }

    /// The standard tanh table over `[-4, 4]`.
    pub fn tanh() -> Self {
        Self::from_fn(|x| x.tanh(), 4.0)
    }

    /// The standard sigmoid table over `[-8, 8]`.
    pub fn sigmoid() -> Self {
        Self::from_fn(|x| 1.0 / (1.0 + (-x).exp()), 8.0)
    }

    /// Looks up the table index for a real input (clamped to the range).
    #[inline]
    pub fn index_of(&self, x: f32) -> usize {
        let clamped = x.clamp(-self.input_range, self.input_range);
        let t = (clamped + self.input_range) / (2.0 * self.input_range);
        ((t * (LUT_ENTRIES - 1) as f32).round() as usize).min(LUT_ENTRIES - 1)
    }

    /// Evaluates via the table, float in / float out.
    #[inline]
    pub fn eval_f32(&self, x: f32) -> f32 {
        self.out_params.dequantize(self.table[self.index_of(x)])
    }

    /// Evaluates on the wide fixed-point activation path.
    #[inline]
    pub fn eval_q(&self, x: ActQ) -> ActQ {
        ActQ::from_f32(self.eval_f32(x.to_f32()))
    }

    /// Raw table contents (what an MU bank would store).
    pub fn entries(&self) -> &[i8] {
        &self.table
    }

    /// Output quantization parameters.
    pub fn out_params(&self) -> QuantParams {
        self.out_params
    }

    /// Half-width of the covered input interval.
    pub fn input_range(&self) -> f32 {
        self.input_range
    }

    /// Memory footprint in bytes (always 1024 for 8-bit entries) — the
    /// "small fixed fraction of switch memory" §5.1.3 mentions.
    pub fn footprint_bytes(&self) -> usize {
        self.table.len()
    }

    /// Fixed-point evaluation precision note: the quantization step of the
    /// stored outputs, i.e. the worst-case representation error.
    pub fn output_step(&self) -> f32 {
        self.out_params.scale
    }
}

impl Default for ActLut {
    fn default() -> Self {
        Self::tanh()
    }
}

const _: () = assert!(ACT_FRAC > 0);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tanh_lut_accuracy() {
        let lut = ActLut::tanh();
        for i in -40..=40 {
            let x = i as f32 / 10.0;
            let err = (lut.eval_f32(x) - x.tanh()).abs();
            assert!(err < 0.02, "x={x} err={err}");
        }
    }

    #[test]
    fn sigmoid_lut_accuracy() {
        let lut = ActLut::sigmoid();
        for i in -80..=80 {
            let x = i as f32 / 10.0;
            let err = (lut.eval_f32(x) - 1.0 / (1.0 + (-x).exp())).abs();
            assert!(err < 0.02, "x={x} err={err}");
        }
    }

    #[test]
    fn clamps_outside_range() {
        let lut = ActLut::tanh();
        assert_eq!(lut.eval_f32(100.0), lut.eval_f32(4.0));
        assert_eq!(lut.eval_f32(-100.0), lut.eval_f32(-4.0));
    }

    #[test]
    fn footprint_is_1024_bytes() {
        assert_eq!(ActLut::tanh().footprint_bytes(), 1024);
        assert_eq!(ActLut::tanh().entries().len(), LUT_ENTRIES);
    }

    #[test]
    #[should_panic(expected = "input_range")]
    fn rejects_bad_range() {
        let _ = ActLut::from_fn(|x| x, -1.0);
    }

    #[test]
    fn index_endpoints() {
        let lut = ActLut::tanh();
        assert_eq!(lut.index_of(-4.0), 0);
        assert_eq!(lut.index_of(4.0), LUT_ENTRIES - 1);
        assert_eq!(lut.index_of(0.0), (LUT_ENTRIES - 1) / 2 + 1);
    }

    proptest! {
        #[test]
        fn prop_lut_error_bounded(x in -4.0f32..4.0) {
            let lut = ActLut::tanh();
            // Error ≤ output quantization step + input sampling step · max slope.
            let sampling = 8.0 / (LUT_ENTRIES - 1) as f32;
            let bound = lut.output_step() + sampling; // tanh slope ≤ 1
            prop_assert!((lut.eval_f32(x) - x.tanh()).abs() <= bound);
        }

        #[test]
        fn prop_lut_monotone_for_monotone_fn(a in -4.0f32..4.0, b in -4.0f32..4.0) {
            let lut = ActLut::tanh();
            if a <= b {
                prop_assert!(lut.eval_f32(a) <= lut.eval_f32(b) + lut.output_step());
            }
        }
    }
}
