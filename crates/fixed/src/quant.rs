//! Per-tensor affine int8 quantization (TensorFlow-Lite style).
//!
//! The paper quantizes trained float32 models to 8-bit fixed point with
//! TensorFlow Lite (§5.1.1, Table 3) and executes them with integer-only
//! arithmetic on the MapReduce block. This module reproduces that scheme:
//! a real value `x` is represented as `q` with `x ≈ scale · (q - zero_point)`,
//! products accumulate in `i32`, and results are folded back to int8 with a
//! [`Requantizer`] (integer multiplier + right shift), exactly the
//! mechanism integer-only inference hardware uses.

use serde::{Deserialize, Serialize};

/// Affine quantization parameters for one tensor: `x ≈ scale · (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-value step size between adjacent quantized codes. Always > 0.
    pub scale: f32,
    /// Quantized code representing real zero. In `[-128, 127]`.
    pub zero_point: i32,
}

impl QuantParams {
    /// Chooses parameters covering the real range `[min, max]`.
    ///
    /// The range is widened to include zero (so zero is exactly
    /// representable, which keeps padding/ReLU cheap in hardware) and
    /// degenerate ranges get a minimal width.
    ///
    /// # Examples
    ///
    /// ```
    /// use taurus_fixed::quant::QuantParams;
    /// let p = QuantParams::from_range(-1.0, 1.0);
    /// assert_eq!(p.quantize(0.0), p.zero_point as i8);
    /// assert!((p.dequantize(p.quantize(0.7)) - 0.7).abs() < p.scale);
    /// ```
    pub fn from_range(min: f32, max: f32) -> Self {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let width = (max - min).max(1e-6);
        let scale = width / 255.0;
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        Self { scale, zero_point }
    }

    /// Chooses parameters from the observed values of a tensor.
    ///
    /// Empty input yields the unit range `[-1, 1]`.
    pub fn from_values(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self::from_range(-1.0, 1.0);
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        if !min.is_finite() || !max.is_finite() {
            return Self::from_range(-1.0, 1.0);
        }
        Self::from_range(min, max)
    }

    /// Symmetric parameters (zero point 0) covering `[-absmax, absmax]`.
    ///
    /// Used for weights, where symmetric quantization removes the
    /// zero-point cross terms from the integer matmul.
    pub fn symmetric(absmax: f32) -> Self {
        let absmax = absmax.abs().max(1e-6);
        Self { scale: absmax / 127.0, zero_point: 0 }
    }

    /// Symmetric parameters from observed values.
    pub fn symmetric_from_values(values: &[f32]) -> Self {
        let absmax =
            values.iter().copied().filter(|v| v.is_finite()).fold(0.0f32, |m, v| m.max(v.abs()));
        Self::symmetric(absmax)
    }

    /// Quantizes one real value (round to nearest, saturate).
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// Dequantizes one code back to a real value.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self::from_range(-1.0, 1.0)
    }
}

/// A quantized tensor: int8 codes plus their shared [`QuantParams`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVec {
    /// Quantized codes.
    pub data: Vec<i8>,
    /// Parameters shared by every element.
    pub params: QuantParams,
}

impl QuantizedVec {
    /// Quantizes a float slice with parameters chosen from its range.
    pub fn quantize(values: &[f32]) -> Self {
        let params = QuantParams::from_values(values);
        Self::quantize_with(values, params)
    }

    /// Quantizes a float slice with caller-provided parameters.
    pub fn quantize_with(values: &[f32], params: QuantParams) -> Self {
        Self { data: values.iter().map(|&v| params.quantize(v)).collect(), params }
    }

    /// Dequantizes every element back to `f32`.
    pub fn dequantize(&self) -> Vec<f32> {
        self.data.iter().map(|&q| self.params.dequantize(q)).collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Integer-only rescaling of an `i32` accumulator to an `i8` output code.
///
/// Computes `out = clamp(round(acc · multiplier / 2^31 / 2^shift) + zero_point)`
/// using only integer operations — the standard TF-Lite/gemmlowp
/// requantization pipeline that maps directly onto shift-capable fixed
/// point ALUs like the Taurus FUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requantizer {
    /// Fixed-point multiplier in Q0.31 (always in `[2^30, 2^31)` unless zero).
    pub multiplier: i32,
    /// Additional right shift (≥ 0).
    pub shift: i32,
    /// Output zero point.
    pub zero_point: i32,
}

impl Requantizer {
    /// Builds a requantizer for a real rescale factor
    /// `real = in_scale / out_scale` (must be positive and < 1 after the
    /// shift normalization; factors ≥ 1 are supported via negative shift).
    pub fn from_real_multiplier(real: f64, zero_point: i32) -> Self {
        if real <= 0.0 {
            return Self { multiplier: 0, shift: 0, zero_point };
        }
        // Normalize real into [0.5, 1) · 2^exp.
        let mut shift = 0i32;
        let mut r = real;
        while r < 0.5 {
            r *= 2.0;
            shift += 1;
        }
        while r >= 1.0 {
            r /= 2.0;
            shift -= 1;
        }
        let mut multiplier = (r * (1i64 << 31) as f64).round() as i64;
        if multiplier == (1i64 << 31) {
            multiplier /= 2;
            shift -= 1;
        }
        Self { multiplier: multiplier as i32, shift, zero_point }
    }

    /// Applies the requantization to an `i32` accumulator.
    #[inline]
    pub fn apply(&self, acc: i32) -> i8 {
        let v = self.apply_i32(acc);
        v.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// Applies the requantization without the final int8 clamp.
    #[inline]
    pub fn apply_i32(&self, acc: i32) -> i32 {
        // Factors ≥ 1 left-shift the accumulator *before* the high multiply
        // (gemmlowp's SaturatingRoundingDoublingHighMul pipeline) so no
        // fractional precision is lost.
        let acc =
            if self.shift < 0 { acc.saturating_mul(1i32 << (-self.shift).min(30)) } else { acc };
        // Rounding doubling high multiply (SQRDMULH semantics). The final
        // division truncates toward zero, as in gemmlowp — an arithmetic
        // shift would floor and bias negative results by one code.
        let prod = acc as i64 * self.multiplier as i64;
        let nudge = if prod >= 0 { 1i64 << 30 } else { 1 - (1i64 << 30) };
        let high = ((prod + nudge) / (1i64 << 31)) as i32;
        // Rounding arithmetic right shift by `shift` (if positive).
        let shifted = if self.shift > 0 {
            let s = self.shift;
            let mask = (1i32 << s) - 1;
            let rem = high & mask;
            let threshold = (mask >> 1) + i32::from(high < 0);
            (high >> s) + i32::from(rem > threshold)
        } else {
            high
        };
        shifted + self.zero_point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_is_exactly_representable() {
        for (lo, hi) in [(-1.0, 1.0), (0.0, 6.0), (-3.0, 0.5), (2.0, 5.0), (-7.0, -2.0)] {
            let p = QuantParams::from_range(lo, hi);
            assert_eq!(p.dequantize(p.quantize(0.0)), 0.0, "range ({lo},{hi})");
        }
    }

    #[test]
    fn quantize_error_bounded_by_half_scale() {
        let p = QuantParams::from_range(-4.0, 4.0);
        for i in -400..=400 {
            let x = i as f32 / 100.0;
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(err <= p.scale / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn symmetric_has_zero_zero_point() {
        let p = QuantParams::symmetric(2.5);
        assert_eq!(p.zero_point, 0);
        assert_eq!(p.quantize(0.0), 0);
        assert_eq!(p.quantize(2.5), 127);
        assert_eq!(p.quantize(-2.5), -127);
    }

    #[test]
    fn degenerate_range_does_not_panic() {
        let p = QuantParams::from_range(0.0, 0.0);
        assert!(p.scale > 0.0);
        let q = QuantParams::from_values(&[]);
        assert!(q.scale > 0.0);
        let r = QuantParams::from_values(&[f32::NAN]);
        assert!(r.scale > 0.0);
    }

    #[test]
    fn quantized_vec_round_trip() {
        let values = [0.0f32, 0.5, -0.5, 1.0, -1.0, 0.25];
        let qv = QuantizedVec::quantize(&values);
        let back = qv.dequantize();
        for (x, y) in values.iter().zip(&back) {
            assert!((x - y).abs() <= qv.params.scale / 2.0 + 1e-6);
        }
        assert_eq!(qv.len(), 6);
        assert!(!qv.is_empty());
    }

    #[test]
    fn requantizer_matches_float_reference() {
        // rescale by 0.0123: check the integer pipeline tracks floats.
        let r = Requantizer::from_real_multiplier(0.0123, 3);
        for acc in [-10_000i32, -1, 0, 1, 517, 9_999] {
            let expect = ((acc as f64 * 0.0123).round() as i32 + 3)
                .clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            let got = r.apply(acc);
            assert!((got as i32 - expect as i32).abs() <= 1, "acc={acc} got={got} expect={expect}");
        }
    }

    #[test]
    fn requantizer_factor_above_one() {
        let r = Requantizer::from_real_multiplier(2.5, 0);
        assert_eq!(r.apply(10), 25);
        assert_eq!(r.apply(-10), -25);
    }

    #[test]
    fn requantizer_zero_factor_is_zero_point() {
        let r = Requantizer::from_real_multiplier(0.0, 7);
        assert_eq!(r.apply(123456), 7);
    }

    proptest! {
        #[test]
        fn prop_quantize_within_half_step(x in -100.0f32..100.0, lo in -50.0f32..0.0, hi in 0.1f32..50.0) {
            let p = QuantParams::from_range(lo, hi);
            let clamped = x.clamp(p.dequantize(i8::MIN), p.dequantize(i8::MAX));
            let err = (p.dequantize(p.quantize(x)) - clamped).abs();
            prop_assert!(err <= p.scale / 2.0 + 1e-5);
        }

        #[test]
        fn prop_requantizer_tracks_float(real in 0.0001f64..4.0, acc in -100_000i32..100_000) {
            let r = Requantizer::from_real_multiplier(real, 0);
            let expect = (acc as f64 * real).round();
            let got = r.apply_i32(acc) as f64;
            // Integer pipeline may differ by one code from the float round.
            prop_assert!((got - expect).abs() <= 1.0 + expect.abs() * 1e-6,
                "real={real} acc={acc} got={got} expect={expect}");
        }

        #[test]
        fn prop_monotone_quantization(a in -10.0f32..10.0, b in -10.0f32..10.0) {
            let p = QuantParams::from_range(-10.0, 10.0);
            if a <= b {
                prop_assert!(p.quantize(a) <= p.quantize(b));
            }
        }
    }
}
