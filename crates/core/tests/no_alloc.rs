//! Allocation-regression guard for the per-packet pipeline hot path:
//! after warm-up, `TaurusPipeline::process_prepared` (parse → registers
//! → MATs → formatter → CGRA inference → verdict MATs) and the sharded
//! runtime's switch entry point `TaurusSwitch::process_prepared_verdict`
//! must perform **zero** heap allocations per packet.
//!
//! Warm-up grows every reusable buffer to steady state (formatter
//! scratch, CGRA output buffers, join-queue capacity, compiled MAT
//! dispatch); the measured loop then replays the same packet set so no
//! new flow state appears, and a thread-local counting global allocator
//! asserts the counter never moved.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{CgraEngine, EngineBackend, SwitchBuilder, TaurusApp};
use taurus_pisa::registers::PacketObs;
use taurus_pisa::{Packet, PipelineConfig, TaurusPipeline};

struct CountingAlloc;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

impl CountingAlloc {
    fn record() {
        COUNTING.with(|c| {
            if c.get() {
                ALLOCS.with(|a| a.set(a.get() + 1));
            }
        });
    }
}

// SAFETY: defers all allocation to `System`; the bookkeeping only
// touches const-initialized thread-locals (no lazy init, no recursion
// into the allocator).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

/// A small fixed packet set: a handful of TCP flows (ML path) plus an
/// ICMP flow (bypass path), with window counts as a shared ingest stage
/// would provide them. Replaying the same set keeps flow-register
/// structure fixed, so the measured loop sees pure steady state.
fn packet_set() -> Vec<(Packet, PacketObs, u64, u64)> {
    let mut set = Vec::new();
    for i in 0..6u64 {
        let mut pkt = Packet::tcp(
            0x0A00_0001 + i as u32 % 3,
            0xC0A8_0002,
            40_000 + i as u16,
            if i % 2 == 0 { 80 } else { 443 },
            if i == 0 { 0x02 } else { 0x10 },
            200 + 40 * i as u16,
        );
        pkt.ts_ns = 1_000 * (i + 1);
        if i == 5 {
            pkt.proto = 1; // ICMP: exercises the bypass path too
        }
        let obs = PacketObs {
            flow_key: 100 + i % 3,
            dst_key: 7,
            srv_key: 11 + i % 2,
            reverse: i % 4 == 3,
            is_flow_start: false,
            len: pkt.wire_len,
            tcp_flags: pkt.tcp_flags,
            proto: pkt.proto,
            ts_ns: pkt.ts_ns,
        };
        set.push((pkt, obs, 1 + i % 2, 1));
    }
    set
}

#[test]
fn steady_state_pipeline_process_prepared_allocates_nothing() {
    // The full anomaly-detection pipeline on the CGRA engine — the
    // paper's expensive path, built exactly as SwitchBuilder wires it.
    let detector = AnomalyDetector::train_default(7, 400);
    let mut pipeline = TaurusPipeline::new(
        PipelineConfig { feature_count: detector.feature_count(), ..PipelineConfig::default() },
        CgraEngine::new(Arc::clone(&detector.program)),
        detector.formatter(),
    );
    pipeline.pre_tables = detector.pre_tables();
    pipeline.post_tables = detector.post_tables(EngineBackend::CgraSim);

    let set = packet_set();
    for (pkt, obs, d, s) in &set {
        pipeline.process_prepared(pkt, *obs, *d, *s);
    }

    let n = allocations_in(|| {
        for _ in 0..50 {
            for (pkt, obs, d, s) in &set {
                pipeline.process_prepared(pkt, *obs, *d, *s);
            }
        }
    });
    assert_eq!(n, 0, "steady-state process_prepared allocated {n} times");
}

#[test]
fn steady_state_switch_verdict_path_allocates_nothing() {
    // A two-app switch (CGRA DNN + threshold scorer) through the
    // runtime worker's verdict-only entry point.
    let detector = AnomalyDetector::train_default(8, 400);
    let syn = SynFloodDetector::default_deployment();
    let mut switch = SwitchBuilder::new()
        .register(&detector)
        .register_on(&syn, EngineBackend::Threshold)
        .build();

    let set = packet_set();
    for (pkt, obs, d, s) in &set {
        switch.process_prepared_verdict(pkt, *obs, *d, *s);
    }

    let n = allocations_in(|| {
        for _ in 0..50 {
            for (pkt, obs, d, s) in &set {
                switch.process_prepared_verdict(pkt, *obs, *d, *s);
            }
        }
    });
    assert_eq!(n, 0, "steady-state process_prepared_verdict allocated {n} times");
}
