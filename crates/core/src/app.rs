//! The first-class application API: [`TaurusApp`].
//!
//! The paper's core claim (Table 1, Fig. 6) is that *one* data-plane
//! architecture hosts *many* per-packet ML applications. This module
//! makes that claim an API: an application is a self-contained bundle of
//!
//! - a model/engine factory ([`TaurusApp::build_engine`], selecting the
//!   cycle-level CGRA simulator or the threshold heuristic),
//! - a feature spec ([`TaurusApp::feature_count`]) and formatter
//!   ([`TaurusApp::formatter`], raw register-stage features → int8
//!   codes),
//! - pre/post match-action tables ([`TaurusApp::pre_tables`],
//!   [`TaurusApp::post_tables`]),
//! - a verdict policy ([`TaurusApp::verdict_policy`]) and its Table 1
//!   reaction-time class ([`TaurusApp::reaction_time`]).
//!
//! The switch ([`crate::switch::SwitchBuilder`]) instantiates one
//! pipeline per registered app and hosts them side by side, each with
//! independent counters — the multi-tenant deployment Fig. 6 sketches.

use std::sync::Arc;

use taurus_compiler::GridProgram;
use taurus_pisa::mat::MatchTable;
use taurus_pisa::pipeline::{ml_bypass_table, InferenceEngine, ThresholdEngine};

pub use crate::apps::ReactionTime;
use crate::engine::CgraEngine;

/// Which inference backend executes an app's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineBackend {
    /// The cycle-level CGRA simulator running the app's compiled
    /// MapReduce program (the paper's hardware path).
    #[default]
    CgraSim,
    /// The trivial sum-vs-threshold engine ([`ThresholdEngine`]) — a
    /// heuristic baseline and a fast stand-in for tests.
    Threshold,
}

/// How an app's per-packet decision affects forwarding.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum VerdictPolicy {
    /// The app's postprocessing MATs write the decision field and the
    /// switch enforces it (drop/flag packets).
    #[default]
    Enforce,
    /// The app observes and counts but never alters forwarding
    /// (monitoring/telemetry deployments).
    Observe,
}

/// An inference engine as hosted on a switch: inference plus the
/// downcast hook live model updates use to reach the concrete engine
/// (program swap on [`crate::engine::CgraEngine`], in-place threshold
/// edits on the heuristic engines). Implemented automatically for every
/// `InferenceEngine + Send + 'static` type.
pub trait SwitchEngine: InferenceEngine + Send {
    /// The engine as [`Any`], so [`crate::update::ModelUpdate`]
    /// installation can downcast to the concrete backend type.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<E: InferenceEngine + Send + 'static> SwitchEngine for E {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A type-erased inference engine, so one switch hosts heterogeneous
/// backends.
pub type BoxedEngine = Box<dyn SwitchEngine>;

pub use taurus_pisa::pipeline::FeatureFormatter;

/// One per-packet ML application, ready to be hosted on a switch.
///
/// Implementations bundle everything [`crate::switch::SwitchBuilder`]
/// needs; registering an app never moves it, so the same app can be
/// deployed on any number of switches.
pub trait TaurusApp {
    /// Short stable identifier (used for per-app counters and reports).
    fn name(&self) -> &str;

    /// The Table 1 reaction-time class this app demands.
    fn reaction_time(&self) -> ReactionTime;

    /// Number of feature codes handed to the inference engine.
    fn feature_count(&self) -> usize;

    /// The app's compiled MapReduce program, if it has one (required by
    /// the [`EngineBackend::CgraSim`] backend).
    fn program(&self) -> Option<Arc<GridProgram>> {
        None
    }

    /// Decision threshold for the [`EngineBackend::Threshold`] backend
    /// (flag when the feature sum exceeds it).
    fn heuristic_threshold(&self) -> i64 {
        0
    }

    /// Builds the app's inference engine on the selected backend.
    ///
    /// # Panics
    ///
    /// The default implementation panics if the CGRA backend is selected
    /// but [`TaurusApp::program`] returns `None`.
    fn build_engine(&self, backend: EngineBackend) -> BoxedEngine {
        match backend {
            EngineBackend::CgraSim => {
                let program = self.program().unwrap_or_else(|| {
                    panic!(
                        "app `{}` has no compiled program; use EngineBackend::Threshold",
                        self.name()
                    )
                });
                Box::new(CgraEngine::new(program))
            }
            EngineBackend::Threshold => {
                Box::new(ThresholdEngine { threshold: self.heuristic_threshold() })
            }
        }
    }

    /// Creates a fresh feature formatter for one hosted pipeline.
    fn formatter(&self) -> FeatureFormatter;

    /// A factory that can rebuild this app's formatter later, enabling
    /// bit-exact rollback ([`crate::switch::TaurusSwitch::capture_rollback`]
    /// needs to re-create the formatter that was active at capture
    /// time). Defaults to `None`: such apps still install and update
    /// normally but cannot anchor a rollback point until an installed
    /// [`crate::update::ModelUpdate`] carries a factory.
    fn formatter_factory(&self) -> Option<crate::update::FormatterFactory> {
        None
    }

    /// Preprocessing MATs (bypass decision, metadata). Defaults to the
    /// standard only-TCP/UDP-visit-the-model selection.
    fn pre_tables(&self) -> Vec<MatchTable> {
        vec![ml_bypass_table()]
    }

    /// Postprocessing MATs (verdict thresholding, queue selection) for
    /// the selected backend. The verdict threshold lives in the engine's
    /// *output* domain, so it depends on the backend: a compiled model
    /// emits score codes, while [`ThresholdEngine`] emits 0/1.
    fn post_tables(&self, backend: EngineBackend) -> Vec<MatchTable>;

    /// How the app's decision affects forwarding. Defaults to
    /// [`VerdictPolicy::Enforce`].
    fn verdict_policy(&self) -> VerdictPolicy {
        VerdictPolicy::Enforce
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_pisa::pipeline::anomaly_post_table;

    struct TinyApp;

    impl TaurusApp for TinyApp {
        fn name(&self) -> &str {
            "tiny"
        }

        fn reaction_time(&self) -> ReactionTime {
            ReactionTime::PerPacket
        }

        fn feature_count(&self) -> usize {
            2
        }

        fn heuristic_threshold(&self) -> i64 {
            10
        }

        fn formatter(&self) -> FeatureFormatter {
            Box::new(|f, out| {
                out.extend_from_slice(&[f.packets.min(127) as i32, f.syn_only.min(127) as i32]);
            })
        }

        fn post_tables(&self, _backend: EngineBackend) -> Vec<MatchTable> {
            vec![anomaly_post_table(1)]
        }
    }

    #[test]
    fn default_engine_factory_builds_threshold_backend() {
        let mut e = TinyApp.build_engine(EngineBackend::Threshold);
        assert_eq!(e.infer(&[6, 5]), 1, "sum 11 > threshold 10");
        assert_eq!(e.infer(&[5, 5]), 0);
        assert_eq!(e.latency_ns(), 1);
    }

    #[test]
    #[should_panic(expected = "no compiled program")]
    fn cgra_backend_requires_a_program() {
        let _ = TinyApp.build_engine(EngineBackend::CgraSim);
    }
}
