//! [`TaurusSwitch`]: the assembled per-packet ML device (Fig. 6).

use std::collections::HashSet;

use taurus_dataset::trace::{TracePacket, TCP_ACK, TCP_SYN};
use taurus_pisa::pipeline::{anomaly_post_table, ml_bypass_table, PipelineResult};
use taurus_pisa::registers::PacketObs;
use taurus_pisa::{Packet, PipelineConfig, TaurusPipeline, Verdict};

use crate::apps::AnomalyDetector;
use crate::engine::CgraEngine;

/// Aggregate switch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwitchReport {
    /// Packets processed.
    pub packets: u64,
    /// Packets that visited the MapReduce block.
    pub ml_packets: u64,
    /// Packets dropped by the anomaly verdict.
    pub dropped: u64,
}

/// A Taurus switch running the anomaly-detection application: PISA
/// pipeline + compiled DNN on the CGRA simulator.
///
/// Borrows the detector (whose compiled program must outlive the
/// switch); construct via [`TaurusSwitch::new`].
pub struct TaurusSwitch<'d> {
    pipeline: TaurusPipeline<CgraEngine<'d>>,
    seen_flows: HashSet<u32>,
    report: SwitchReport,
}

impl<'d> TaurusSwitch<'d> {
    /// Builds the switch around a trained detector.
    pub fn new(detector: &'d AnomalyDetector) -> Self {
        let engine = CgraEngine::new(&detector.program);
        let standardizer = detector.standardizer.clone();
        let quantized_params = detector.quantized.input_params();
        let mut pipeline = TaurusPipeline::new(
            PipelineConfig { feature_count: 6, ..PipelineConfig::default() },
            engine,
            move |f| {
                let mut row = f.encode_dnn6().to_vec();
                standardizer.apply_row(&mut row);
                row.iter().map(|&v| i32::from(quantized_params.quantize(v))).collect()
            },
        );
        pipeline.pre_tables.push(ml_bypass_table());
        pipeline.post_tables.push(anomaly_post_table(detector.threshold_code));
        Self { pipeline, seen_flows: HashSet::new(), report: SwitchReport::default() }
    }

    /// Processes one trace packet; returns the pipeline result.
    pub fn process_trace_packet(&mut self, tp: &TracePacket) -> PipelineResult {
        let pkt = Self::to_packet(tp);
        let obs = self.observation(tp);
        let result = self.pipeline.process(&pkt, obs);
        self.report.packets += 1;
        if !result.bypassed {
            self.report.ml_packets += 1;
        }
        if result.verdict == Verdict::Drop {
            self.report.dropped += 1;
        }
        result
    }

    /// Clears flow state and counters (between experiment phases).
    pub fn reset(&mut self) {
        self.pipeline.reset_state();
        self.seen_flows.clear();
        self.report = SwitchReport::default();
    }

    /// Aggregate counters.
    pub fn report(&self) -> SwitchReport {
        self.report
    }

    /// The ML block's per-packet latency in nanoseconds.
    pub fn ml_latency_ns(&mut self) -> u64 {
        use taurus_pisa::InferenceEngine;
        self.pipeline.engine_mut().latency_ns()
    }

    fn to_packet(tp: &TracePacket) -> Packet {
        let mut p = Packet::tcp(
            tp.tuple.src_ip,
            tp.tuple.dst_ip,
            tp.tuple.src_port,
            tp.tuple.dst_port,
            tp.tcp_flags,
            tp.len,
        );
        p.proto = tp.tuple.proto;
        p.ts_ns = tp.ts_ns;
        p
    }

    /// Builds the register-stage observation the way hardware would:
    /// direction from SYN-side bookkeeping, flow start from first-seen.
    fn observation(&mut self, tp: &TracePacket) -> PacketObs {
        let canonical = tp.tuple.canonical();
        let is_flow_start = self.seen_flows.insert(tp.conn_id)
            && (tp.tuple.proto != 6 || tp.tcp_flags & TCP_SYN != 0 && tp.tcp_flags & TCP_ACK == 0);
        // The responder is the destination of forward packets.
        let (resp_ip, resp_port) = if tp.reverse {
            (tp.tuple.src_ip, tp.tuple.src_port)
        } else {
            (tp.tuple.dst_ip, tp.tuple.dst_port)
        };
        PacketObs {
            flow_key: canonical.hash(),
            dst_key: u64::from(resp_ip).wrapping_mul(0x9E3779B97F4A7C15),
            srv_key: (u64::from(resp_ip) << 16 | u64::from(resp_port))
                .wrapping_mul(0x9E3779B97F4A7C15),
            reverse: tp.reverse,
            is_flow_start,
            len: tp.len,
            tcp_flags: tp.tcp_flags,
            proto: tp.tuple.proto,
            ts_ns: tp.ts_ns,
        }
    }
}

impl core::fmt::Debug for TaurusSwitch<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaurusSwitch").field("report", &self.report).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::{PacketTrace, TraceConfig};

    #[test]
    fn switch_processes_a_trace() {
        let detector = AnomalyDetector::train_default(3, 1_500);
        let mut switch = TaurusSwitch::new(&detector);
        let records = KddGenerator::new(11).take(60);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(500) {
            let r = switch.process_trace_packet(tp);
            assert!(r.latency_ns > 0);
        }
        let report = switch.report();
        assert!(report.packets > 0);
        assert!(report.ml_packets > 0, "TCP/UDP packets visit the model");
        // ML latency is the compiled DNN's latency: order 100–300 ns.
        assert!((50..=400).contains(&switch.ml_latency_ns()), "{}", switch.ml_latency_ns());
    }

    #[test]
    fn icmp_bypasses() {
        let detector = AnomalyDetector::train_default(4, 1_000);
        let mut switch = TaurusSwitch::new(&detector);
        let records = KddGenerator::new(12).take(200);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let icmp = trace.packets.iter().find(|p| p.tuple.proto == 1);
        if let Some(tp) = icmp {
            let r = switch.process_trace_packet(tp);
            assert!(r.bypassed);
        }
    }

    #[test]
    fn reset_clears_counters() {
        let detector = AnomalyDetector::train_default(5, 1_000);
        let mut switch = TaurusSwitch::new(&detector);
        let records = KddGenerator::new(13).take(20);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(50) {
            switch.process_trace_packet(tp);
        }
        assert!(switch.report().packets > 0);
        switch.reset();
        assert_eq!(switch.report().packets, 0);
    }
}
