//! [`TaurusSwitch`]: the assembled per-packet ML device (Fig. 6), now
//! hosting any number of [`TaurusApp`]s side by side.
//!
//! Construction goes through [`SwitchBuilder`]: pick a pipeline config
//! and an engine backend, register apps (each contributes its engine,
//! feature formatter, and MATs), and build. The switch owns everything —
//! no borrow lifetimes — because engines share compiled programs via
//! `Arc` ([`crate::engine::CgraEngine`]).

use serde::{Deserialize, Serialize};
use taurus_dataset::trace::TracePacket;
use taurus_pisa::pipeline::PipelineResult;
use taurus_pisa::registers::PacketObs;
use taurus_pisa::{Packet, PipelineConfig, TaurusPipeline, Verdict};

use crate::app::{BoxedEngine, EngineBackend, ReactionTime, TaurusApp, VerdictPolicy};
use crate::apps::AnomalyDetector;
use crate::engine::CgraEngine;
use crate::ingest::{to_packet, ObsBuilder};
use crate::update::{EngineUpdate, FormatterFactory, ModelUpdate, RollbackPoint, UpdateError};

/// Per-app counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AppCounters {
    /// Packets this app's pipeline processed.
    pub packets: u64,
    /// Packets that visited this app's MapReduce block.
    pub ml_packets: u64,
    /// Packets this app voted to drop.
    pub dropped: u64,
    /// Packets this app voted to flag.
    pub flagged: u64,
}

impl AppCounters {
    /// Adds another counter set into this one (merging shard reports).
    pub fn absorb(&mut self, other: &AppCounters) {
        self.packets += other.packets;
        self.ml_packets += other.ml_packets;
        self.dropped += other.dropped;
        self.flagged += other.flagged;
    }
}

/// One hosted app's identity and counters, as reported.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppReport {
    /// The app's [`TaurusApp::name`].
    pub name: String,
    /// Its declared reaction-time class.
    pub reaction: ReactionTime,
    /// Whether its verdicts are enforced or observe-only.
    pub policy: VerdictPolicy,
    /// Its counters.
    pub counters: AppCounters,
}

/// Aggregate switch counters plus the per-app breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SwitchReport {
    /// Packets processed by the switch.
    pub packets: u64,
    /// Packets that visited at least one app's MapReduce block.
    pub ml_packets: u64,
    /// Packets dropped by the combined verdict.
    pub dropped: u64,
    /// Packets flagged (but forwarded) by the combined verdict.
    pub flagged: u64,
    /// Flow-table slots evicted by idle timeout across all hosted apps
    /// (0 unless `PipelineConfig::idle_timeout_ns` is set).
    pub evictions: u64,
    /// Flow-table occupants evicted because their bucket filled, across
    /// all hosted apps (keyed flow tables only; 0 direct-mapped).
    pub capacity_evictions: u64,
    /// Flow-table slots currently holding a stamped occupant, summed
    /// across hosted apps (0 for direct-mapped tables with the idle
    /// timer off, which never stamp).
    pub flow_occupancy: u64,
    /// Flow-table accesses resolved per probe position, summed across
    /// hosted apps (keyed flow tables: one cell per way; empty
    /// direct-mapped).
    pub probe_hist: Vec<u64>,
    /// Per-app identities and counters, in registration order.
    pub apps: Vec<AppReport>,
}

/// Why two [`SwitchReport`]s could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportMergeError {
    /// No reports were supplied to [`SwitchReport::merged`].
    Empty,
    /// The app rosters differ (count, order, name, reaction, or policy):
    /// the reports describe different switch configurations.
    AppMismatch {
        /// Index into `apps` where the rosters first diverge (or the
        /// shorter roster's length).
        index: usize,
    },
}

impl core::fmt::Display for ReportMergeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReportMergeError::Empty => write!(f, "cannot merge an empty set of switch reports"),
            ReportMergeError::AppMismatch { index } => write!(
                f,
                "switch reports host different apps (first divergence at roster index {index}); \
                 only replicas of the same switch configuration can be merged"
            ),
        }
    }
}

impl std::error::Error for ReportMergeError {}

impl SwitchReport {
    /// Merges another replica's report into this one: counters add up,
    /// app rosters must match exactly (same apps, same order).
    ///
    /// # Errors
    ///
    /// [`ReportMergeError::AppMismatch`] if the rosters differ — merging
    /// reports of differently configured switches would be meaningless.
    pub fn merge(&mut self, other: &SwitchReport) -> Result<(), ReportMergeError> {
        let divergence = self.apps.iter().zip(&other.apps).position(|(a, b)| {
            a.name != b.name || a.reaction != b.reaction || a.policy != b.policy
        });
        if let Some(index) = divergence {
            return Err(ReportMergeError::AppMismatch { index });
        }
        if self.apps.len() != other.apps.len() {
            let index = self.apps.len().min(other.apps.len());
            return Err(ReportMergeError::AppMismatch { index });
        }
        self.packets += other.packets;
        self.ml_packets += other.ml_packets;
        self.dropped += other.dropped;
        self.flagged += other.flagged;
        self.evictions += other.evictions;
        self.capacity_evictions += other.capacity_evictions;
        self.flow_occupancy += other.flow_occupancy;
        if self.probe_hist.len() < other.probe_hist.len() {
            self.probe_hist.resize(other.probe_hist.len(), 0);
        }
        for (mine, theirs) in self.probe_hist.iter_mut().zip(&other.probe_hist) {
            *mine += theirs;
        }
        for (mine, theirs) in self.apps.iter_mut().zip(&other.apps) {
            mine.counters.absorb(&theirs.counters);
        }
        Ok(())
    }

    /// Merges a set of replica reports into one global report (the
    /// sharded runtime's merge step).
    ///
    /// # Errors
    ///
    /// [`ReportMergeError::Empty`] when `reports` yields nothing;
    /// [`ReportMergeError::AppMismatch`] when rosters differ.
    pub fn merged<'a>(
        reports: impl IntoIterator<Item = &'a SwitchReport>,
    ) -> Result<SwitchReport, ReportMergeError> {
        let mut it = reports.into_iter();
        let mut acc = it.next().ok_or(ReportMergeError::Empty)?.clone();
        for r in it {
            acc.merge(r)?;
        }
        Ok(acc)
    }
}

/// Result of pushing one packet through every hosted app.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchResult {
    /// The combined forwarding decision: the strictest verdict among
    /// enforcing apps (`Drop > Flag > Forward`).
    pub verdict: Verdict,
    /// End-to-end latency, ns: apps run in parallel hardware, so this is
    /// the slowest app pipeline's latency.
    pub latency_ns: u64,
    /// Whether every hosted app bypassed its ML block.
    pub bypassed: bool,
    /// Per-app pipeline results, in registration order.
    pub per_app: Vec<PipelineResult>,
}

/// The combined per-packet outcome without the per-app breakdown — a
/// plain value type, so hot loops that only need the verdict (the
/// sharded runtime's workers) skip [`SwitchResult`]'s per-packet
/// `per_app` vector allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchVerdict {
    /// The combined forwarding decision (see [`SwitchResult::verdict`]).
    pub verdict: Verdict,
    /// Slowest app pipeline's latency, ns.
    pub latency_ns: u64,
    /// Whether every hosted app bypassed its ML block.
    pub bypassed: bool,
}

struct HostedApp {
    name: String,
    reaction: ReactionTime,
    policy: VerdictPolicy,
    pipeline: TaurusPipeline<BoxedEngine>,
    counters: AppCounters,
    /// Installed model version: 0 for the build-time model, then the
    /// version of the last [`ModelUpdate`] applied.
    version: u64,
    /// Factory that can rebuild the *currently active* formatter:
    /// seeded from [`TaurusApp::formatter_factory`] at registration and
    /// replaced whenever an installed update carries a formatter. `None`
    /// means the active formatter is a one-off closure a rollback point
    /// cannot restore.
    formatter_origin: Option<FormatterFactory>,
}

/// Builds a [`TaurusSwitch`]: configuration, engine backend selection,
/// and app registration.
///
/// ```
/// use taurus_core::apps::SynFloodDetector;
/// use taurus_core::SwitchBuilder;
///
/// let mut switch = SwitchBuilder::new()
///     .register(&SynFloodDetector::default_deployment())
///     .build();
/// assert_eq!(switch.report().apps.len(), 1);
/// ```
#[derive(Default)]
pub struct SwitchBuilder {
    config: PipelineConfig,
    backend: EngineBackend,
    apps: Vec<RegisteredApp>,
}

/// Rejected registration: an app with this name is already hosted on the
/// switch being built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateAppError {
    /// The contested [`TaurusApp::name`].
    pub name: String,
}

impl core::fmt::Display for DuplicateAppError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "duplicate app name `{}`: every TaurusApp on one switch needs a unique name \
             (SwitchReport.apps and report merging are keyed by it)",
            self.name
        )
    }
}

impl std::error::Error for DuplicateAppError {}

struct RegisteredApp {
    name: String,
    reaction: ReactionTime,
    policy: VerdictPolicy,
    feature_count: usize,
    engine: BoxedEngine,
    formatter: crate::app::FeatureFormatter,
    formatter_origin: Option<FormatterFactory>,
    pre_tables: Vec<taurus_pisa::mat::MatchTable>,
    post_tables: Vec<taurus_pisa::mat::MatchTable>,
}

impl SwitchBuilder {
    /// Starts a builder with the default pipeline config and the CGRA
    /// simulator backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pipeline configuration shared by all hosted apps (the
    /// per-app feature width comes from each app).
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the engine backend for subsequently registered apps.
    pub fn backend(mut self, backend: EngineBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Registers an app on the currently selected backend. The app is
    /// only read, never moved: it can be registered on many switches.
    ///
    /// # Panics
    ///
    /// Panics if an app with the same [`TaurusApp::name`] is already
    /// registered (see [`SwitchBuilder::try_register_on`] for the
    /// non-panicking form).
    pub fn register(self, app: &dyn TaurusApp) -> Self {
        let backend = self.backend;
        self.register_on(app, backend)
    }

    /// Registers an app on an explicit backend (mix CGRA-simulated and
    /// threshold apps on one switch).
    ///
    /// # Panics
    ///
    /// Panics if an app with the same [`TaurusApp::name`] is already
    /// registered (see [`SwitchBuilder::try_register_on`] for the
    /// non-panicking form).
    pub fn register_on(self, app: &dyn TaurusApp, backend: EngineBackend) -> Self {
        self.try_register_on(app, backend).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers an app on an explicit backend, rejecting duplicates.
    ///
    /// # Errors
    ///
    /// [`DuplicateAppError`] if an app with the same
    /// [`TaurusApp::name`] is already registered — per-app counters,
    /// reports, and report merging are keyed by name, so two apps
    /// sharing one would make [`SwitchReport::apps`] ambiguous.
    pub fn try_register_on(
        mut self,
        app: &dyn TaurusApp,
        backend: EngineBackend,
    ) -> Result<Self, DuplicateAppError> {
        if self.apps.iter().any(|r| r.name == app.name()) {
            return Err(DuplicateAppError { name: app.name().to_string() });
        }
        self.apps.push(RegisteredApp {
            name: app.name().to_string(),
            reaction: app.reaction_time(),
            policy: app.verdict_policy(),
            feature_count: app.feature_count(),
            engine: app.build_engine(backend),
            formatter: app.formatter(),
            formatter_origin: app.formatter_factory(),
            pre_tables: app.pre_tables(),
            post_tables: app.post_tables(backend),
        });
        Ok(self)
    }

    /// Builds the switch.
    ///
    /// # Panics
    ///
    /// Panics if no app was registered — a Taurus switch without an app
    /// is just a PISA switch.
    pub fn build(self) -> TaurusSwitch {
        assert!(!self.apps.is_empty(), "register at least one TaurusApp before build()");
        let config = self.config;
        let apps = self
            .apps
            .into_iter()
            .map(|r| {
                let app_config =
                    PipelineConfig { feature_count: r.feature_count, ..config.clone() };
                let mut pipeline = TaurusPipeline::new(app_config, r.engine, r.formatter);
                pipeline.pre_tables = r.pre_tables;
                pipeline.post_tables = r.post_tables;
                HostedApp {
                    name: r.name,
                    reaction: r.reaction,
                    policy: r.policy,
                    pipeline,
                    counters: AppCounters::default(),
                    version: 0,
                    formatter_origin: r.formatter_origin,
                }
            })
            .collect();
        // Keyed flow tables resolve flow starts by table miss, so the
        // ingest builder keeps no per-connection first-seen set at all —
        // O(1) ingest memory regardless of stream length.
        let obs_builder = match config.flow_table {
            taurus_pisa::FlowTableKind::Keyed { .. } => ObsBuilder::untracked(),
            taurus_pisa::FlowTableKind::DirectMapped => ObsBuilder::new(),
        };
        TaurusSwitch { apps, obs_builder, aggregate: AppCounters::default() }
    }
}

/// A Taurus switch hosting one or more per-packet ML applications, each
/// on its own pipeline instance (PISA stages + MapReduce block), with
/// independent counters and a combined forwarding verdict.
pub struct TaurusSwitch {
    apps: Vec<HostedApp>,
    obs_builder: ObsBuilder,
    /// Device-level counters from the *combined* per-packet outcome
    /// (unions across apps — not derivable from per-app counters).
    aggregate: AppCounters,
}

impl TaurusSwitch {
    /// Convenience: a single-app switch running the anomaly detector on
    /// the CGRA simulator (the paper's §5.2.2 deployment).
    pub fn new(detector: &AnomalyDetector) -> Self {
        SwitchBuilder::new().register(detector).build()
    }

    /// Processes one raw packet with its register-stage observation
    /// through every hosted app.
    pub fn process(&mut self, pkt: &Packet, obs: PacketObs) -> SwitchResult {
        self.run_apps(|app| app.pipeline.process(pkt, obs))
    }

    /// Processes one raw packet whose cross-flow window counts were
    /// computed upstream — the sharded runtime's entry point: ingest's
    /// merge stage runs the one shared [`taurus_pisa::CrossFlowWindows`]
    /// in global arrival order (destination keys are not
    /// flow-consistent, so per-shard windows would diverge) and hands
    /// each shard the counts along with the packet. Whether ingest is
    /// inline or a parse/merge pipeline, the counts reaching a shard
    /// are identical (see `taurus_runtime::pipeline`).
    pub fn process_prepared(
        &mut self,
        pkt: &Packet,
        obs: PacketObs,
        dst_count: u64,
        srv_count: u64,
    ) -> SwitchResult {
        self.run_apps(|app| app.pipeline.process_prepared(pkt, obs, dst_count, srv_count))
    }

    /// [`TaurusSwitch::process_prepared`] without the per-app result
    /// collection: identical counters, identical combined verdict, no
    /// per-packet allocation — the entry point the sharded runtime's
    /// worker loops use.
    pub fn process_prepared_verdict(
        &mut self,
        pkt: &Packet,
        obs: PacketObs,
        dst_count: u64,
        srv_count: u64,
    ) -> SwitchVerdict {
        self.run_apps_core(
            |app| app.pipeline.process_prepared(pkt, obs, dst_count, srv_count),
            |_| {},
        )
    }

    fn run_apps(&mut self, run: impl FnMut(&mut HostedApp) -> PipelineResult) -> SwitchResult {
        let mut per_app = Vec::with_capacity(self.apps.len());
        let v = self.run_apps_core(run, |r| per_app.push(r));
        SwitchResult { verdict: v.verdict, latency_ns: v.latency_ns, bypassed: v.bypassed, per_app }
    }

    /// The shared per-packet loop: runs every hosted app, maintains
    /// per-app and aggregate counters, and combines enforcing verdicts.
    /// `each` observes every app's result (used by [`SwitchResult`] to
    /// collect the breakdown; the verdict-only path passes a no-op).
    fn run_apps_core(
        &mut self,
        mut run: impl FnMut(&mut HostedApp) -> PipelineResult,
        mut each: impl FnMut(PipelineResult),
    ) -> SwitchVerdict {
        self.aggregate.packets += 1;
        let mut verdict = Verdict::Forward;
        let mut latency_ns = 0;
        let mut bypassed = true;
        for app in &mut self.apps {
            let r = run(app);
            app.counters.packets += 1;
            if !r.bypassed {
                app.counters.ml_packets += 1;
                bypassed = false;
            }
            match r.verdict {
                Verdict::Drop => app.counters.dropped += 1,
                Verdict::Flag => app.counters.flagged += 1,
                Verdict::Forward => {}
            }
            if app.policy == VerdictPolicy::Enforce {
                verdict = verdict.max_severity(r.verdict);
            }
            latency_ns = latency_ns.max(r.latency_ns);
            each(r);
        }
        if !bypassed {
            self.aggregate.ml_packets += 1;
        }
        match verdict {
            Verdict::Drop => self.aggregate.dropped += 1,
            Verdict::Flag => self.aggregate.flagged += 1,
            Verdict::Forward => {}
        }
        SwitchVerdict { verdict, latency_ns, bypassed }
    }

    /// Processes one trace packet; returns the combined result.
    pub fn process_trace_packet(&mut self, tp: &TracePacket) -> SwitchResult {
        let pkt = to_packet(tp);
        let obs = self.obs_builder.observe(tp);
        self.process(&pkt, obs)
    }

    /// [`TaurusSwitch::process_trace_packet`] without the per-app
    /// result collection: identical counters and combined verdict, no
    /// per-packet `per_app` allocation — what a sequential hot loop
    /// (the `hotpath` bench's reference measurement) should call when
    /// it only needs the forwarding decision.
    pub fn process_trace_verdict(&mut self, tp: &TracePacket) -> SwitchVerdict {
        let pkt = to_packet(tp);
        let obs = self.obs_builder.observe(tp);
        self.run_apps_core(|app| app.pipeline.process(&pkt, obs), |_| {})
    }

    /// Clears flow state and counters (between experiment phases).
    pub fn reset(&mut self) {
        for app in &mut self.apps {
            app.pipeline.reset_state();
            app.counters = AppCounters::default();
        }
        self.obs_builder.reset();
        self.aggregate = AppCounters::default();
    }

    /// Aggregate counters (combined-verdict unions) plus the per-app
    /// breakdown.
    pub fn report(&self) -> SwitchReport {
        SwitchReport {
            packets: self.aggregate.packets,
            ml_packets: self.aggregate.ml_packets,
            dropped: self.aggregate.dropped,
            flagged: self.aggregate.flagged,
            evictions: self.apps.iter().map(|app| app.pipeline.evictions()).sum(),
            capacity_evictions: self.apps.iter().map(|app| app.pipeline.capacity_evictions()).sum(),
            flow_occupancy: self.apps.iter().map(|app| app.pipeline.flow_occupancy()).sum(),
            probe_hist: self.apps.iter().fold(Vec::new(), |mut acc, app| {
                let hist = app.pipeline.probe_hist();
                if acc.len() < hist.len() {
                    acc.resize(hist.len(), 0);
                }
                for (a, h) in acc.iter_mut().zip(hist) {
                    *a += h;
                }
                acc
            }),
            apps: self
                .apps
                .iter()
                .map(|app| AppReport {
                    name: app.name.clone(),
                    reaction: app.reaction,
                    policy: app.policy,
                    counters: app.counters,
                })
                .collect(),
        }
    }

    /// Installs a live model update on one hosted app: the engine is
    /// rewired first (program swap on CGRA engines, in-place cutoff
    /// edits on threshold engines), then the feature formatter and
    /// postprocessing MATs are replaced if the update carries them,
    /// and finally the app's installed version advances.
    ///
    /// Installation is transactional: every failure path is checked
    /// before any state is mutated, so an erroring install leaves the
    /// switch exactly as it was. Flow registers, counters, and
    /// cross-flow windows are untouched — packets in flight keep their
    /// accumulated features and only the model interpreting them
    /// changes, the paper's no-loss weight-install semantics.
    ///
    /// # Errors
    ///
    /// [`UpdateError::UnknownApp`] when no hosted app matches,
    /// [`UpdateError::StaleVersion`] unless `update.version` strictly
    /// exceeds the installed version, and
    /// [`UpdateError::BackendMismatch`] when the engine update's kind
    /// does not fit the hosted engine (e.g. a compiled program offered
    /// to a threshold backend).
    pub fn install_update(&mut self, update: &ModelUpdate) -> Result<(), UpdateError> {
        let app = self
            .apps
            .iter_mut()
            .find(|a| a.name == update.app)
            .ok_or_else(|| UpdateError::UnknownApp { app: update.app.clone() })?;
        if update.version <= app.version {
            return Err(UpdateError::StaleVersion {
                app: app.name.clone(),
                installed: app.version,
                offered: update.version,
            });
        }
        let engine = app.pipeline.engine_mut().as_mut().as_any_mut();
        match &update.engine {
            EngineUpdate::Program(program) => match engine.downcast_mut::<CgraEngine>() {
                Some(cgra) => cgra.swap_program(std::sync::Arc::clone(program)),
                None => return Err(UpdateError::BackendMismatch { app: app.name.clone() }),
            },
            EngineUpdate::Threshold(t) => {
                if let Some(e) = engine.downcast_mut::<taurus_pisa::pipeline::ThresholdEngine>() {
                    e.threshold = *t;
                } else if let Some(e) = engine.downcast_mut::<taurus_pisa::LinearThresholdEngine>()
                {
                    e.threshold = *t;
                } else {
                    return Err(UpdateError::BackendMismatch { app: app.name.clone() });
                }
            }
            EngineUpdate::KeepEngine => {}
        }
        if let Some(factory) = &update.formatter {
            app.pipeline.set_formatter(factory());
            app.formatter_origin = Some(FormatterFactory::clone(factory));
        }
        if let Some(tables) = &update.post_tables {
            app.pipeline.post_tables = tables.clone();
        }
        app.version = update.version;
        Ok(())
    }

    /// Captures everything needed to restore one hosted app to its
    /// current model, bit-exactly — taken just before a risky install
    /// (a canary) so [`TaurusSwitch::rollback_to`] can undo it.
    ///
    /// The capture is cheap: compiled programs are shared by `Arc`,
    /// thresholds are plain values, MATs are small tables, and the
    /// formatter is captured as the factory it was built from rather
    /// than by copying the (uncloneable) closure.
    ///
    /// # Errors
    ///
    /// [`UpdateError::UnknownApp`] when no hosted app matches;
    /// [`UpdateError::UnrestorableFormatter`] when the app's active
    /// formatter has no factory (the app returns `None` from
    /// [`TaurusApp::formatter_factory`] and no installed update carried
    /// one) — restoring it later would be impossible.
    pub fn capture_rollback(&mut self, app_name: &str) -> Result<RollbackPoint, UpdateError> {
        let app = self
            .apps
            .iter_mut()
            .find(|a| a.name == app_name)
            .ok_or_else(|| UpdateError::UnknownApp { app: app_name.to_string() })?;
        let formatter = app
            .formatter_origin
            .clone()
            .ok_or_else(|| UpdateError::UnrestorableFormatter { app: app_name.to_string() })?;
        let engine = app.pipeline.engine_mut().as_mut().as_any_mut();
        let engine = if let Some(cgra) = engine.downcast_mut::<CgraEngine>() {
            EngineUpdate::Program(std::sync::Arc::clone(cgra.sim().program()))
        } else if let Some(e) = engine.downcast_mut::<taurus_pisa::pipeline::ThresholdEngine>() {
            EngineUpdate::Threshold(e.threshold)
        } else if let Some(e) = engine.downcast_mut::<taurus_pisa::LinearThresholdEngine>() {
            EngineUpdate::Threshold(e.threshold)
        } else {
            // An exotic engine backend we cannot snapshot: leave it
            // alone on rollback (formatter/tables/version still restore).
            EngineUpdate::KeepEngine
        };
        Ok(RollbackPoint {
            app: app.name.clone(),
            version: app.version,
            engine,
            formatter,
            post_tables: app.pipeline.post_tables.clone(),
        })
    }

    /// Restores one hosted app to a previously captured
    /// [`RollbackPoint`]: engine state, formatter, postprocessing MATs,
    /// and version all return to their capture-time values. Flow
    /// registers, counters, and cross-flow windows are untouched — like
    /// [`TaurusSwitch::install_update`], only the model interpreting
    /// the features changes.
    ///
    /// Unlike installs, rollback deliberately *rewinds* the version
    /// counter: a canary that installed v5 and rolled back reports the
    /// prior version again, so the control plane can re-offer a fixed
    /// v6 later without tripping the stale-version guard on replicas
    /// that never saw v5.
    ///
    /// # Errors
    ///
    /// [`UpdateError::UnknownApp`] when no hosted app matches the
    /// point's app, [`UpdateError::BackendMismatch`] when the captured
    /// engine state does not fit the hosted engine (only possible if
    /// the point came from a differently configured switch). Both leave
    /// the switch untouched.
    pub fn rollback_to(&mut self, point: &RollbackPoint) -> Result<(), UpdateError> {
        let app = self
            .apps
            .iter_mut()
            .find(|a| a.name == point.app)
            .ok_or_else(|| UpdateError::UnknownApp { app: point.app.clone() })?;
        let engine = app.pipeline.engine_mut().as_mut().as_any_mut();
        match &point.engine {
            EngineUpdate::Program(program) => match engine.downcast_mut::<CgraEngine>() {
                Some(cgra) => cgra.swap_program(std::sync::Arc::clone(program)),
                None => return Err(UpdateError::BackendMismatch { app: app.name.clone() }),
            },
            EngineUpdate::Threshold(t) => {
                if let Some(e) = engine.downcast_mut::<taurus_pisa::pipeline::ThresholdEngine>() {
                    e.threshold = *t;
                } else if let Some(e) = engine.downcast_mut::<taurus_pisa::LinearThresholdEngine>()
                {
                    e.threshold = *t;
                } else {
                    return Err(UpdateError::BackendMismatch { app: app.name.clone() });
                }
            }
            EngineUpdate::KeepEngine => {}
        }
        app.pipeline.set_formatter((point.formatter)());
        app.formatter_origin = Some(FormatterFactory::clone(&point.formatter));
        app.pipeline.post_tables = point.post_tables.clone();
        app.version = point.version;
        Ok(())
    }

    /// The installed model version of one hosted app (0 until the first
    /// update), or `None` for an unknown name.
    pub fn app_version(&self, app: &str) -> Option<u64> {
        self.apps.iter().find(|a| a.name == app).map(|a| a.version)
    }

    /// Installed model versions of every hosted app, in registration
    /// order.
    pub fn app_versions(&self) -> Vec<(String, u64)> {
        self.apps.iter().map(|a| (a.name.clone(), a.version)).collect()
    }

    /// Number of hosted apps.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// The slowest hosted ML block's per-packet latency in nanoseconds
    /// (apps run in parallel, so this bounds the ML path).
    pub fn ml_latency_ns(&self) -> u64 {
        use taurus_pisa::InferenceEngine;
        self.apps.iter().map(|a| a.pipeline.engine().latency_ns()).max().unwrap_or(0)
    }
}

impl core::fmt::Debug for TaurusSwitch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaurusSwitch")
            .field("apps", &self.apps.iter().map(|a| a.name.as_str()).collect::<Vec<_>>())
            .field("packets", &self.aggregate.packets)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EngineBackend;
    use crate::apps::SynFloodDetector;
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::{PacketTrace, TraceConfig};

    #[test]
    fn switch_processes_a_trace() {
        let detector = AnomalyDetector::train_default(3, 1_500);
        let mut switch = TaurusSwitch::new(&detector);
        let records = KddGenerator::new(11).take(60);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(500) {
            let r = switch.process_trace_packet(tp);
            assert!(r.latency_ns > 0);
        }
        let report = switch.report();
        assert!(report.packets > 0);
        assert!(report.ml_packets > 0, "TCP/UDP packets visit the model");
        // ML latency is the compiled DNN's latency: order 100–300 ns.
        assert!((50..=400).contains(&switch.ml_latency_ns()), "{}", switch.ml_latency_ns());
    }

    #[test]
    fn icmp_bypasses() {
        let detector = AnomalyDetector::train_default(4, 1_000);
        let mut switch = TaurusSwitch::new(&detector);
        let records = KddGenerator::new(12).take(200);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let icmp = trace.packets.iter().find(|p| p.tuple.proto == 1);
        if let Some(tp) = icmp {
            let r = switch.process_trace_packet(tp);
            assert!(r.bypassed);
        }
    }

    #[test]
    fn reset_clears_counters() {
        let detector = AnomalyDetector::train_default(5, 1_000);
        let mut switch = TaurusSwitch::new(&detector);
        let records = KddGenerator::new(13).take(20);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(50) {
            switch.process_trace_packet(tp);
        }
        assert!(switch.report().packets > 0);
        switch.reset();
        let report = switch.report();
        assert_eq!(report.packets, 0);
        assert!(report.apps.iter().all(|a| a.counters == AppCounters::default()));
    }

    #[test]
    fn builder_hosts_two_apps_with_independent_counters() {
        let detector = AnomalyDetector::train_default(6, 1_500);
        let syn = SynFloodDetector::default_deployment();
        let mut switch = SwitchBuilder::new().register(&detector).register(&syn).build();
        assert_eq!(switch.app_count(), 2);

        let records = KddGenerator::new(14).take(80);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(800) {
            let r = switch.process_trace_packet(tp);
            assert_eq!(r.per_app.len(), 2);
        }

        let report = switch.report();
        assert_eq!(report.apps.len(), 2);
        assert_eq!(report.apps[0].name, "anomaly-detection");
        assert_eq!(report.apps[1].name, "syn-flood");
        // Both apps saw every packet, on their own pipelines.
        assert_eq!(report.apps[0].counters.packets, report.packets);
        assert_eq!(report.apps[1].counters.packets, report.packets);
        // The DNN takes TCP+UDP, the SYN app TCP only: counters diverge.
        assert!(report.apps[0].counters.ml_packets >= report.apps[1].counters.ml_packets);
        // Aggregates are combined-verdict unions: at least the strictest
        // single app, at most the sum of all enforcing apps.
        let per_app_dropped: Vec<u64> = report.apps.iter().map(|a| a.counters.dropped).collect();
        assert!(report.dropped >= *per_app_dropped.iter().max().unwrap());
        assert!(report.dropped <= per_app_dropped.iter().sum::<u64>());
        assert_eq!(report.ml_packets, report.apps[0].counters.ml_packets, "union of ML visits");
        // Aggregate ML latency is the slowest app (the DNN ≫ the scorer).
        assert_eq!(switch.ml_latency_ns(), detector.program.timing.latency_ns.round() as u64);
    }

    #[test]
    fn mixed_backends_on_one_switch() {
        let syn = SynFloodDetector::default_deployment();
        let detector = AnomalyDetector::train_default(7, 1_000);
        let mut switch = SwitchBuilder::new()
            .register_on(&detector, EngineBackend::CgraSim)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        let records = KddGenerator::new(15).take(40);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(200) {
            switch.process_trace_packet(tp);
        }
        // The threshold engine reports 1 ns; the DNN dominates.
        assert!(switch.ml_latency_ns() > 1);
        assert!(switch.report().apps[1].counters.packets > 0);
    }

    #[test]
    #[should_panic(expected = "at least one TaurusApp")]
    fn build_without_apps_panics() {
        let _ = SwitchBuilder::new().build();
    }

    #[test]
    fn try_register_rejects_duplicate_app_names() {
        let syn = SynFloodDetector::default_deployment();
        let again = SynFloodDetector::new(10); // different config, same name
        let b = match SwitchBuilder::new().try_register_on(&syn, EngineBackend::Threshold) {
            Ok(b) => b,
            Err(e) => panic!("first registration must succeed: {e}"),
        };
        let err = match b.try_register_on(&again, EngineBackend::Threshold) {
            Ok(_) => panic!("expected duplicate rejection"),
            Err(e) => e,
        };
        assert_eq!(err.name, "syn-flood");
        assert!(err.to_string().contains("duplicate app name `syn-flood`"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate app name `syn-flood`")]
    fn register_panics_on_duplicate_app_names() {
        let syn = SynFloodDetector::default_deployment();
        let again = SynFloodDetector::new(10);
        let _ = SwitchBuilder::new()
            .register_on(&syn, EngineBackend::Threshold)
            .register_on(&again, EngineBackend::Threshold);
    }

    #[test]
    fn reports_merge_counters_and_reject_mismatched_rosters() {
        let syn = SynFloodDetector::default_deployment();
        let detector = AnomalyDetector::train_default(8, 1_000);
        let build = || {
            SwitchBuilder::new()
                .register_on(&detector, EngineBackend::Threshold)
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        };
        let mut a = build();
        let mut b = build();
        let records = KddGenerator::new(16).take(60);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let (left, right) = trace.packets.split_at(trace.packets.len() / 2);
        for tp in left {
            a.process_trace_packet(tp);
        }
        for tp in right {
            b.process_trace_packet(tp);
        }
        let merged = SwitchReport::merged([&a.report(), &b.report()]).expect("same roster");
        assert_eq!(merged.packets, trace.packets.len() as u64);
        assert_eq!(
            merged.apps[0].counters.packets,
            a.report().apps[0].counters.packets + b.report().apps[0].counters.packets
        );
        assert_eq!(merged.apps[1].name, "syn-flood");

        // Roster mismatch: a single-app switch cannot merge with a two-app one.
        let single = SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
        let err = SwitchReport::merged([&a.report(), &single.report()]).unwrap_err();
        assert_eq!(err, ReportMergeError::AppMismatch { index: 0 });
        assert_eq!(SwitchReport::merged([]).unwrap_err(), ReportMergeError::Empty);
    }

    #[test]
    fn install_update_swaps_the_cgra_program_live() {
        use taurus_ml::TrainParams;

        let detector = AnomalyDetector::train_default(31, 1_200);
        let mut switch = TaurusSwitch::new(&detector);
        assert_eq!(switch.app_version("anomaly-detection"), Some(0));

        // Retrain the float model so the new program behaves differently.
        let mut retrained = detector.float_model.clone();
        let mut gen = KddGenerator::new(32);
        let mut ds = gen.binary_dataset(500, taurus_dataset::kdd::FeatureView::Dnn6);
        detector.standardizer.apply(&mut ds);
        retrained.train(
            ds.features(),
            ds.labels(),
            &TrainParams { epochs: 5, ..TrainParams::default() },
        );
        let update = detector.prepare_update(&retrained, ds.features(), 1);

        let records = KddGenerator::new(33).take(120);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let before: Vec<_> =
            trace.packets.iter().map(|tp| switch.process_trace_packet(tp).verdict).collect();

        switch.install_update(&update).expect("CGRA program swap");
        assert_eq!(switch.app_version("anomaly-detection"), Some(1));
        assert_eq!(switch.app_versions(), vec![("anomaly-detection".to_string(), 1)]);

        // Same stream again: flow state persisted across the install,
        // but a different model now interprets the features.
        let mut replay = ObsBuilder::new();
        let _ = &mut replay;
        let after: Vec<_> =
            trace.packets.iter().map(|tp| switch.process_trace_packet(tp).verdict).collect();
        assert_eq!(before.len(), after.len());
        // Counters kept accumulating across the swap — no reset, no loss.
        assert_eq!(switch.report().packets, 2 * trace.packets.len() as u64);
    }

    #[test]
    fn install_update_rejects_unknown_stale_and_mismatched() {
        use crate::update::{ModelUpdate, UpdateError};

        let syn = SynFloodDetector::default_deployment();
        let mut switch = SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();

        // Unknown app.
        let err =
            switch.install_update(&ModelUpdate::retune_threshold("no-such-app", 1, 5)).unwrap_err();
        assert_eq!(err, UpdateError::UnknownApp { app: "no-such-app".into() });

        // In-place threshold edit works on the heuristic backend…
        switch.install_update(&syn.retune(30, 2, EngineBackend::Threshold)).expect("retune");
        assert_eq!(switch.app_version("syn-flood"), Some(2));

        // …but stale/equal versions are rejected and leave state alone.
        let err = switch.install_update(&syn.retune(20, 2, EngineBackend::Threshold)).unwrap_err();
        assert_eq!(
            err,
            UpdateError::StaleVersion { app: "syn-flood".into(), installed: 2, offered: 2 }
        );
        assert_eq!(switch.app_version("syn-flood"), Some(2));

        // A compiled-program update cannot land on a threshold engine —
        // including a CgraSim retune mistakenly aimed at this
        // deployment, whose raw-score MAT would otherwise silently
        // never fire against the heuristic's 0/1 output.
        let err = switch.install_update(&syn.retune(30, 3, EngineBackend::CgraSim)).unwrap_err();
        assert_eq!(err, UpdateError::BackendMismatch { app: "syn-flood".into() });
        assert_eq!(switch.app_version("syn-flood"), Some(2), "failed install mutated nothing");
        assert!(err.to_string().contains("different engine backend"), "{err}");
    }

    #[test]
    fn rollback_round_trip_is_bit_exact_against_a_never_updated_control() {
        use taurus_ml::TrainParams;

        // Golden round-trip: capture → install a retrained model →
        // rollback, then verify the switch is indistinguishable from a
        // control switch that never installed anything — per-packet
        // SwitchResults included, not just counters.
        let detector = AnomalyDetector::train_default(41, 1_200);
        let mut subject = TaurusSwitch::new(&detector);
        let mut control = TaurusSwitch::new(&detector);

        let mut retrained = detector.float_model.clone();
        let mut gen = KddGenerator::new(42);
        let mut ds = gen.binary_dataset(400, taurus_dataset::kdd::FeatureView::Dnn6);
        detector.standardizer.apply(&mut ds);
        retrained.train(
            ds.features(),
            ds.labels(),
            &TrainParams { epochs: 5, ..TrainParams::default() },
        );
        let update = detector.prepare_update(&retrained, ds.features(), 1);

        let records = KddGenerator::new(43).take(120);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let (probation, suffix) = trace.packets.split_at(trace.packets.len() / 2);

        let point = subject.capture_rollback("anomaly-detection").expect("capturable");
        subject.install_update(&update).expect("canary install");
        assert_eq!(subject.app_version("anomaly-detection"), Some(1));
        // Probation traffic runs under the new model on the subject and
        // the old model on the control: flow registers advance
        // identically (verdicts never feed back into flow state).
        for tp in probation {
            let _ = subject.process_trace_packet(tp);
            let _ = control.process_trace_packet(tp);
        }
        subject.rollback_to(&point).expect("rollback restores");
        assert_eq!(subject.app_version("anomaly-detection"), Some(0), "version rewinds");

        // From here on the two switches must agree on *everything*.
        for tp in suffix {
            assert_eq!(subject.process_trace_packet(tp), control.process_trace_packet(tp));
        }
        // A second capture still works: rollback restored the factory.
        let again = subject.capture_rollback("anomaly-detection").expect("still capturable");
        assert_eq!(again.version, 0);
    }

    #[test]
    fn capture_rollback_rejects_unknown_apps() {
        let syn = SynFloodDetector::default_deployment();
        let mut switch = SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
        let err = switch.capture_rollback("no-such-app").unwrap_err();
        assert_eq!(err, crate::update::UpdateError::UnknownApp { app: "no-such-app".into() });
        // Threshold-backend capture works and round-trips the cutoff.
        let point = switch.capture_rollback("syn-flood").expect("threshold capture");
        switch.install_update(&syn.retune(999, 7, EngineBackend::Threshold)).expect("retune");
        switch.rollback_to(&point).expect("rollback");
        assert_eq!(switch.app_version("syn-flood"), Some(0));
    }

    #[test]
    fn threshold_retune_changes_the_verdict_boundary_in_place() {
        let syn = SynFloodDetector::default_deployment();
        // CGRA deployment: the cutoff lives in the post MAT.
        let mut switch = SwitchBuilder::new().register(&syn).build();
        let records = KddGenerator::new(34).take(200);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in &trace.packets {
            switch.process_trace_packet(tp);
        }
        let strict_drops = switch.report().dropped;
        switch.reset();
        // Retune to an unreachable cutoff: nothing can drop any more.
        switch.install_update(&syn.retune(i64::MAX, 1, EngineBackend::CgraSim)).expect("retune");
        for tp in &trace.packets {
            switch.process_trace_packet(tp);
        }
        assert!(strict_drops > 0, "baseline cutoff drops something");
        assert_eq!(switch.report().dropped, 0, "retuned cutoff drops nothing");
    }

    #[test]
    fn process_prepared_with_shared_windows_matches_process() {
        use taurus_pisa::CrossFlowWindows;

        use crate::ingest::{to_packet, ObsBuilder};

        let detector = AnomalyDetector::train_default(9, 1_200);
        let syn = SynFloodDetector::default_deployment();
        let build = || SwitchBuilder::new().register(&detector).register(&syn).build();
        let mut classic = build();
        let mut split = build();

        let config = PipelineConfig::default();
        let mut obs_builder = ObsBuilder::new();
        let mut windows = CrossFlowWindows::new(config.flow_slots, config.window_ns);
        let records = KddGenerator::new(18).take(120);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in &trace.packets {
            let a = classic.process_trace_packet(tp);
            let obs = obs_builder.observe(tp);
            let (d, s) = windows.observe(&obs);
            let b = split.process_prepared(&to_packet(tp), obs, d, s);
            assert_eq!(a, b);
        }
        assert_eq!(classic.report(), split.report());
    }
}
