//! End-to-end harness: Taurus vs the control-plane baseline (Table 8).
//!
//! Both systems see the *same* packet trace and the *same* features:
//! stream features come from one deterministic [`FlowTracker`] pass
//! (identical to the switch's register stage), the Taurus path runs the
//! compiled int8 DNN per packet on the CGRA simulator, and the baseline
//! runs the float model in the sampled, batched, rule-installing control
//! loop. The paper's headline (§5.2.2): Taurus sustains the model's
//! offline F1 and detects two orders of magnitude more anomalous events.
//!
//! [`FlowTracker`]: taurus_pisa::FlowTracker

use serde::{Deserialize, Serialize};
use taurus_controlplane::baseline::{run_baseline, BaselineConfig, BaselineReport, PacketSample};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_dataset::Standardizer;
use taurus_ml::BinaryMetrics;
use taurus_pisa::{FlowTracker, Verdict};

use crate::apps::AnomalyDetector;
use crate::ingest::ObsBuilder;
use crate::switch::SwitchBuilder;

/// One packet's extracted stream features and ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSample {
    /// Raw (unstandardized) 6-feature DNN view.
    pub features: Vec<f32>,
    /// Ground-truth anomaly label.
    pub anomalous: bool,
    /// Originator IP (rule key).
    pub orig_ip: u32,
    /// Arrival time, ns.
    pub ts_ns: u64,
}

/// Extracts per-packet stream features with the same register-stage
/// semantics as the switch (deterministic, so training and deployment
/// see identical inputs — the paper's "full model accuracy" property).
pub fn extract_stream_features(trace: &PacketTrace) -> Vec<StreamSample> {
    let mut tracker = FlowTracker::new(4096, 5_000_000);
    let mut obs_builder = ObsBuilder::new();
    trace
        .packets
        .iter()
        .map(|tp| {
            let obs = obs_builder.observe(tp);
            let f = tracker.observe(&obs);
            StreamSample {
                features: f.encode_dnn6().to_vec(),
                anomalous: tp.anomalous,
                orig_ip: if tp.reverse { tp.tuple.dst_ip } else { tp.tuple.src_ip },
                ts_ns: tp.ts_ns,
            }
        })
        .collect()
}

/// Trains the anomaly detector on stream-extracted features from a
/// dedicated training trace (the §5.2.2 methodology: models learn the
/// same features the data plane computes).
pub fn build_detector_from_trace(seed: u64, n_train_records: usize) -> AnomalyDetector {
    let records = KddGenerator::new(seed).take(n_train_records);
    let trace =
        PacketTrace::expand(records, &TraceConfig { seed: seed ^ 0x70, ..Default::default() });
    build_detector_from_packets(&trace, seed)
}

/// Trains the anomaly detector from an explicit training trace — the
/// same every-3rd-packet decorrelation, standardization, and 80/20
/// split as [`build_detector_from_trace`], for callers that shape their
/// own workload (e.g. non-default class priors or offered rates).
pub fn build_detector_from_packets(trace: &PacketTrace, seed: u64) -> AnomalyDetector {
    let samples = extract_stream_features(trace);
    // Decorrelate: take every 3rd packet for training.
    let xs: Vec<Vec<f32>> = samples.iter().step_by(3).map(|s| s.features.clone()).collect();
    let ys: Vec<usize> = samples.iter().step_by(3).map(|s| usize::from(s.anomalous)).collect();
    let ds = taurus_dataset::Dataset::new(xs, ys, 2);
    let standardizer = Standardizer::fit(&ds);
    let mut ds_std = ds;
    standardizer.apply(&mut ds_std);
    ds_std.shuffle(seed ^ 0xAB);
    let (train, test) = ds_std.split(0.8);
    AnomalyDetector::from_data(
        train.features().to_vec(),
        train.labels().to_vec(),
        test.features().to_vec(),
        test.labels().to_vec(),
        standardizer,
        seed,
    )
}

/// Taurus-side evaluation results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaurusEvalReport {
    /// Percentage of anomalous packets dropped at the switch.
    pub detected_pct: f64,
    /// Packet-level F1 (×100).
    pub f1_percent: f64,
    /// Mean pipeline latency, ns.
    pub mean_latency_ns: f64,
    /// Packets evaluated.
    pub packets: usize,
}

/// Runs the Taurus data path over a trace and scores per-packet verdicts.
pub fn run_taurus(detector: &AnomalyDetector, trace: &PacketTrace) -> TaurusEvalReport {
    let mut switch = SwitchBuilder::new().register(detector).build();
    let mut metrics = BinaryMetrics::default();
    let mut latency_sum = 0u64;
    for tp in &trace.packets {
        let r = switch.process_trace_packet(tp);
        latency_sum += r.latency_ns;
        metrics.record(r.verdict == Verdict::Drop, tp.anomalous);
    }
    TaurusEvalReport {
        detected_pct: metrics.detected_percent(),
        f1_percent: metrics.f1_percent(),
        mean_latency_ns: latency_sum as f64 / trace.packets.len().max(1) as f64,
        packets: trace.packets.len(),
    }
}

/// Convenience wrapper used by docs/examples: evaluates a detector on a
/// freshly generated small trace.
pub fn run_taurus_only(
    detector: &AnomalyDetector,
    n_records: usize,
    seed: u64,
) -> TaurusEvalReport {
    let records = KddGenerator::new(seed).take(n_records);
    let trace = PacketTrace::expand(records, &TraceConfig { seed, ..Default::default() });
    run_taurus(detector, &trace)
}

/// One Table 8 row: baseline and Taurus on the same trace at one
/// sampling rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table8Row {
    /// Control-plane sampling rate.
    pub sampling_rate: f64,
    /// Baseline measurements.
    pub baseline: BaselineReport,
    /// Taurus measurements.
    pub taurus: TaurusEvalReport,
}

/// Runs the full Table 8 comparison over one evaluation trace.
pub fn run_table8(
    detector: &AnomalyDetector,
    trace: &PacketTrace,
    sampling_rates: &[f64],
) -> Vec<Table8Row> {
    let samples = extract_stream_features(trace);
    // The baseline's server model consumes standardized float features.
    let baseline_samples: Vec<PacketSample> = samples
        .iter()
        .map(|s| {
            let mut row = s.features.clone();
            detector.standardizer.apply_row(&mut row);
            PacketSample {
                ts_ns: s.ts_ns,
                src_ip: s.orig_ip,
                features: row,
                anomalous: s.anomalous,
            }
        })
        .collect();
    let taurus = run_taurus(detector, trace);
    sampling_rates
        .iter()
        .map(|&rate| Table8Row {
            sampling_rate: rate,
            baseline: run_baseline(
                &baseline_samples,
                &detector.float_model,
                &BaselineConfig { sampling_rate: rate, ..BaselineConfig::default() },
            ),
            taurus,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_features_are_deterministic() {
        let records = KddGenerator::new(31).take(100);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        assert_eq!(extract_stream_features(&trace), extract_stream_features(&trace));
    }

    #[test]
    fn detector_from_trace_has_usable_f1() {
        let d = build_detector_from_trace(41, 600);
        assert!(d.offline_f1 > 40.0, "offline F1 {}", d.offline_f1);
    }

    #[test]
    fn taurus_f1_tracks_offline_f1() {
        let d = build_detector_from_trace(42, 800);
        let records = KddGenerator::new(43).take(400);
        let trace = PacketTrace::expand(records, &TraceConfig { seed: 43, ..Default::default() });
        let r = run_taurus(&d, &trace);
        assert!(r.packets > 0);
        // The data plane runs the same model on the same features: its F1
        // should be within a band of the offline score (§5.2.2's claim).
        assert!(
            (r.f1_percent - d.offline_f1).abs() < 25.0,
            "taurus {} vs offline {}",
            r.f1_percent,
            d.offline_f1
        );
        assert!(r.detected_pct > 20.0, "detected {}", r.detected_pct);
    }

    #[test]
    fn table8_taurus_beats_baseline_by_orders_of_magnitude() {
        let d = build_detector_from_trace(44, 800);
        let records = KddGenerator::new(45).take(500);
        let trace = PacketTrace::expand(records, &TraceConfig { seed: 45, ..Default::default() });
        let rows = run_table8(&d, &trace, &[1e-3]);
        let row = &rows[0];
        assert!(
            row.taurus.detected_pct > 10.0 * row.baseline.detected_pct.max(0.01),
            "taurus {}% vs baseline {}%",
            row.taurus.detected_pct,
            row.baseline.detected_pct
        );
        assert!(row.taurus.f1_percent > row.baseline.f1_percent);
    }
}
