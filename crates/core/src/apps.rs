//! In-network applications: the Table 1 registry and the concrete
//! [`TaurusApp`] implementations — the §5.2.2 anomaly-detection bundle
//! and the SYN-flood detector (Table 1's "DoS" row).

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use taurus_compiler::{compile, frontend, CompileOptions, GridConfig, GridProgram};
use taurus_dataset::kdd::{FeatureView, KddGenerator};
use taurus_dataset::Standardizer;
use taurus_ir::GraphBuilder;
use taurus_ml::mlp::MlpConfig;
use taurus_ml::{Mlp, QuantizedMlp, TrainParams};
use taurus_pisa::mat::MatchTable;
use taurus_pisa::pipeline::{anomaly_post_table, proto_select_table};

use crate::app::{EngineBackend, FeatureFormatter, TaurusApp, VerdictPolicy};
use crate::update::{EngineUpdate, FormatterFactory, ModelUpdate};

/// Reaction-time classes from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReactionTime {
    /// Must decide on every packet.
    PerPacket,
    /// Per flowlet (burst of a flow).
    PerFlowlet,
    /// Per flow.
    PerFlow,
    /// Per microburst.
    PerMicroburst,
}

/// One Table 1 row: an in-network application and its demanded reaction
/// times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AppInfo {
    /// Application name as printed in Table 1.
    pub name: &'static str,
    /// Security (true) or performance (false) category.
    pub security: bool,
    /// Demanded reaction granularities.
    pub reaction: &'static [ReactionTime],
}

/// The Table 1 application registry.
pub fn registry() -> Vec<AppInfo> {
    use ReactionTime::*;
    vec![
        AppInfo { name: "Heavy Hitters", security: true, reaction: &[PerPacket] },
        AppInfo {
            name: "DoS (e.g., SYN Flood)",
            security: true,
            reaction: &[PerPacket, PerFlow, PerMicroburst],
        },
        AppInfo { name: "Probes (e.g., Port Scan)", security: true, reaction: &[PerFlow] },
        AppInfo { name: "U2R: Unauth. Access to Root", security: true, reaction: &[PerFlow] },
        AppInfo { name: "R2L: Unauth. Remote Access", security: true, reaction: &[PerFlow] },
        AppInfo { name: "Congestion Control", security: false, reaction: &[PerPacket] },
        AppInfo { name: "Active Queue Mgmt (AQM)", security: false, reaction: &[PerPacket] },
        AppInfo {
            name: "Traffic Classification",
            security: false,
            reaction: &[PerFlowlet, PerFlow],
        },
        AppInfo { name: "Load Balancing", security: false, reaction: &[PerPacket, PerFlowlet] },
        AppInfo {
            name: "Switching and Routing",
            security: false,
            reaction: &[PerPacket, PerFlowlet],
        },
    ]
}

/// The complete anomaly-detection application: trained float model,
/// quantized deployment model, feature standardizer, compiled grid
/// program, and decision threshold.
#[derive(Debug)]
pub struct AnomalyDetector {
    /// The control plane's float model (used by the baseline and for
    /// online training).
    pub float_model: Mlp,
    /// The int8 deployment model (the golden reference for the switch).
    pub quantized: QuantizedMlp,
    /// Standardizer fitted on the training features.
    pub standardizer: Standardizer,
    /// The compiled MapReduce program (shared: engines hold clones).
    pub program: Arc<GridProgram>,
    /// Output code meaning "anomalous" (quantized 0.5 of the sigmoid).
    pub threshold_code: i64,
    /// Offline F1 (×100) on the held-out connection test set.
    pub offline_f1: f64,
}

impl AnomalyDetector {
    /// Trains the paper's 4-layer DNN (6 → 12 → 6 → 3 → 1, §5.1.2) on
    /// synthetic KDD-like connection records, quantizes it, and compiles
    /// it for the default grid.
    ///
    /// This is the *connection-record* training path used for Table 5 and
    /// quick starts; the end-to-end harness retrains on stream-extracted
    /// features (see `e2e::build_detector_from_trace`).
    pub fn train_default(seed: u64, n_records: usize) -> Self {
        let mut gen = KddGenerator::new(seed);
        let mut ds = gen.binary_dataset(n_records, FeatureView::Dnn6);
        ds.shuffle(seed ^ 0x5151);
        let standardizer = Standardizer::fit(&ds);
        let mut ds_std = ds;
        standardizer.apply(&mut ds_std);
        let (train, test) = ds_std.split(0.8);
        Self::from_data(
            train.features().to_vec(),
            train.labels().to_vec(),
            test.features().to_vec(),
            test.labels().to_vec(),
            standardizer,
            seed,
        )
    }

    /// Builds the detector from explicit standardized train/test splits.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or widths differ from the
    /// DNN's six inputs.
    pub fn from_data(
        train_x: Vec<Vec<f32>>,
        train_y: Vec<usize>,
        test_x: Vec<Vec<f32>>,
        test_y: Vec<usize>,
        standardizer: Standardizer,
        seed: u64,
    ) -> Self {
        assert!(!train_x.is_empty(), "empty training set");
        assert!(train_x.iter().all(|x| x.len() == 6), "AD DNN takes 6 features");
        let cfg = MlpConfig::anomaly_dnn();
        let mut model = Mlp::new(&cfg, seed);
        model.train(
            &train_x,
            &train_y,
            &TrainParams { epochs: 30, lr: 0.08, ..TrainParams::default() },
        );
        let quantized = QuantizedMlp::quantize(&model, &train_x);
        let graph = frontend::mlp_to_graph(&quantized);
        let program = Arc::new(
            compile(&graph, &GridConfig::default(), &CompileOptions::default())
                .expect("AD DNN fits the default grid"),
        );
        let threshold_code = i64::from(quantized.output_params().quantize(0.5));
        let offline_f1 = taurus_ml::BinaryMetrics::from_pairs(
            test_x.iter().zip(&test_y).map(|(x, &y)| (quantized.predict_class(x) == 1, y == 1)),
        )
        .f1_percent();
        Self { float_model: model, quantized, standardizer, program, threshold_code, offline_f1 }
    }

    /// Encodes standardized features into the model's int8 input codes.
    pub fn encode(&self, standardized: &[f32]) -> Vec<i32> {
        self.quantized.quantize_input(standardized).into_iter().map(i32::from).collect()
    }

    /// Standardizes raw stream features then encodes them.
    pub fn format_features(&self, raw: &[f32]) -> Vec<i32> {
        let mut row = raw.to_vec();
        self.standardizer.apply_row(&mut row);
        self.encode(&row)
    }

    /// Validates the paper's sanity check: the DNN's weights occupy a few
    /// KB, versus megabytes of equivalent flow rules (§3).
    pub fn weight_bytes(&self) -> usize {
        self.quantized.weight_bytes()
    }

    /// Prepares a live [`ModelUpdate`] from a retrained float model —
    /// the control-plane half of §5.2.3's weight-install path, done
    /// *once* per update regardless of replica count:
    ///
    /// 1. post-training int8 quantization against `calibration`
    ///    (**standardized** feature rows — typically the sample buffer
    ///    the round trained on, the only data the control plane has),
    /// 2. lowering + compilation into a fresh [`GridProgram`] shared via
    ///    `Arc` by every replica that installs the update,
    /// 3. a new feature-formatter factory (the model's input
    ///    quantization range moved with the weights) and a new verdict
    ///    MAT (the quantized 0.5 cutoff lives in the new output range).
    ///
    /// The detector itself is not mutated; it describes the deployment
    /// (name, standardizer, pipeline shape) while the update carries the
    /// new model.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty, has non-6-wide rows, or the
    /// model does not fit the default grid (the AD DNN always does).
    pub fn prepare_update(
        &self,
        model: &Mlp,
        calibration: &[Vec<f32>],
        version: u64,
    ) -> ModelUpdate {
        let quantized = QuantizedMlp::quantize(model, calibration);
        let graph = frontend::mlp_to_graph(&quantized);
        let program = Arc::new(
            compile(&graph, &GridConfig::default(), &CompileOptions::default())
                .expect("AD DNN fits the default grid"),
        );
        let threshold_code = i64::from(quantized.output_params().quantize(0.5));
        let standardizer = self.standardizer.clone();
        let params = quantized.input_params();
        let formatter: FormatterFactory = Arc::new(move || {
            let standardizer = standardizer.clone();
            Box::new(move |f: &taurus_pisa::registers::FlowFeatures, out: &mut Vec<i32>| {
                let mut row = f.encode_dnn6();
                standardizer.apply_row(&mut row);
                out.extend(row.iter().map(|&v| i32::from(params.quantize(v))));
            })
        });
        ModelUpdate {
            app: self.name().to_string(),
            version,
            weights: Some(model.export_weights()),
            engine: EngineUpdate::Program(program),
            formatter: Some(formatter),
            post_tables: Some(vec![anomaly_post_table(threshold_code)]),
        }
    }
}

impl TaurusApp for AnomalyDetector {
    fn name(&self) -> &str {
        "anomaly-detection"
    }

    fn reaction_time(&self) -> ReactionTime {
        ReactionTime::PerPacket
    }

    fn feature_count(&self) -> usize {
        6
    }

    fn program(&self) -> Option<Arc<GridProgram>> {
        Some(Arc::clone(&self.program))
    }

    fn formatter(&self) -> FeatureFormatter {
        let standardizer = self.standardizer.clone();
        let params = self.quantized.input_params();
        Box::new(move |f, out| {
            // Stack-resident row: encode, standardize, quantize without
            // touching the heap (the out buffer is caller-reused).
            let mut row = f.encode_dnn6();
            standardizer.apply_row(&mut row);
            out.extend(row.iter().map(|&v| i32::from(params.quantize(v))));
        })
    }

    fn formatter_factory(&self) -> Option<FormatterFactory> {
        let standardizer = self.standardizer.clone();
        let params = self.quantized.input_params();
        Some(Arc::new(move || {
            let standardizer = standardizer.clone();
            Box::new(move |f: &taurus_pisa::registers::FlowFeatures, out: &mut Vec<i32>| {
                let mut row = f.encode_dnn6();
                standardizer.apply_row(&mut row);
                out.extend(row.iter().map(|&v| i32::from(params.quantize(v))));
            })
        }))
    }

    fn post_tables(&self, backend: EngineBackend) -> Vec<MatchTable> {
        match backend {
            // The compiled DNN emits sigmoid codes; drop at quantized 0.5.
            EngineBackend::CgraSim => vec![anomaly_post_table(self.threshold_code)],
            // The heuristic emits 0/1 (standardized feature mass above
            // average, via the default `heuristic_threshold` of 0).
            EngineBackend::Threshold => vec![anomaly_post_table(1)],
        }
    }
}

/// A SYN-flood / DDoS detector (Table 1's "DoS" row): a compiled linear
/// scorer over the register stage's SYN-flood signature — bare-SYN
/// count, destination/service fan-in, and total packets (half-open
/// flows score high, long-lived established flows score negative).
///
/// Deliberately a *different shape* of [`TaurusApp`] from the DNN: a
/// hand-built four-feature MapReduce program with a single dot-product
/// row, proving the switch hosts heterogeneous models side by side.
#[derive(Debug)]
pub struct SynFloodDetector {
    /// The compiled one-row scorer.
    pub program: Arc<GridProgram>,
    /// Score at or above which the packet is dropped.
    pub threshold: i64,
}

/// Weights of the linear scorer over
/// `[syn_only, dst_count, srv_count, packets]`.
const SYN_FLOOD_WEIGHTS: [i8; 4] = [3, 2, 2, -1];

impl SynFloodDetector {
    /// Compiles the scorer for the default grid.
    pub fn new(threshold: i64) -> Self {
        let mut b = GraphBuilder::new();
        let x = b.input(4);
        let w = b.weights("syn_score", 1, 4, SYN_FLOOD_WEIGHTS.to_vec());
        let dot = b.map_reduce_rows(w, x, 0);
        b.output(dot);
        let graph = b.finish().expect("scorer graph is valid");
        let program = compile(&graph, &GridConfig::default(), &CompileOptions::default())
            .expect("a one-row scorer always fits");
        Self { program: Arc::new(program), threshold }
    }

    /// The default deployment: drop once the weighted half-open score
    /// clears a burst of ~8 bare SYNs with fan-in.
    pub fn default_deployment() -> Self {
        Self::new(40)
    }

    /// Prepares a live threshold retune for a deployment on `backend`.
    /// The linear scorer's weights stay put; only the drop cutoff moves,
    /// which lands in different places per backend: the CGRA deployment
    /// thresholds in the postprocessing MAT (the engine emits raw
    /// scores), while the heuristic backend thresholds inside
    /// [`taurus_pisa::LinearThresholdEngine`] itself (updated in
    /// place) and its MAT keys on the resulting 0/1.
    pub fn retune(&self, threshold: i64, version: u64, backend: EngineBackend) -> ModelUpdate {
        match backend {
            // Re-assert the (unchanged) compiled program rather than
            // `KeepEngine`: the raw-score post MAT below is only
            // meaningful against a CGRA engine, and the program swap's
            // downcast check turns a backend mix-up into a loud
            // `BackendMismatch` instead of a silently dead cutoff.
            EngineBackend::CgraSim => ModelUpdate {
                app: self.name().to_string(),
                version,
                weights: None,
                engine: EngineUpdate::Program(Arc::clone(&self.program)),
                formatter: None,
                post_tables: Some(vec![anomaly_post_table(threshold)]),
            },
            // The engine fires strictly above its cutoff; the MAT fires
            // at >= threshold. Same off-by-one as build_engine.
            EngineBackend::Threshold => {
                ModelUpdate::retune_threshold(self.name(), version, threshold - 1)
            }
        }
    }
}

impl TaurusApp for SynFloodDetector {
    fn name(&self) -> &str {
        "syn-flood"
    }

    fn reaction_time(&self) -> ReactionTime {
        ReactionTime::PerPacket
    }

    fn feature_count(&self) -> usize {
        4
    }

    fn program(&self) -> Option<Arc<GridProgram>> {
        Some(Arc::clone(&self.program))
    }

    fn build_engine(&self, backend: EngineBackend) -> crate::app::BoxedEngine {
        match backend {
            EngineBackend::CgraSim => {
                Box::new(crate::engine::CgraEngine::new(Arc::clone(&self.program)))
            }
            // The model is linear, so the heuristic backend can apply the
            // exact weights (crucially the negative packet-count weight —
            // an unweighted sum would drop every long-lived flow).
            EngineBackend::Threshold => Box::new(taurus_pisa::LinearThresholdEngine {
                weights: SYN_FLOOD_WEIGHTS.iter().map(|&w| i64::from(w)).collect(),
                threshold: self.threshold - 1, // post table fires at ≥ threshold
            }),
        }
    }

    fn formatter(&self) -> FeatureFormatter {
        Box::new(|f, out| {
            out.extend_from_slice(&[
                f.syn_only.min(127) as i32,
                f.dst_count.min(127) as i32,
                f.srv_count.min(127) as i32,
                f.packets.min(127) as i32,
            ]);
        })
    }

    fn formatter_factory(&self) -> Option<FormatterFactory> {
        // The formatter is stateless, so the factory just re-creates it.
        Some(Arc::new(|| {
            Box::new(|f: &taurus_pisa::registers::FlowFeatures, out: &mut Vec<i32>| {
                out.extend_from_slice(&[
                    f.syn_only.min(127) as i32,
                    f.dst_count.min(127) as i32,
                    f.srv_count.min(127) as i32,
                    f.packets.min(127) as i32,
                ]);
            })
        }))
    }

    fn pre_tables(&self) -> Vec<MatchTable> {
        // SYN floods are a TCP phenomenon; everything else bypasses.
        vec![proto_select_table(&[6])]
    }

    fn post_tables(&self, backend: EngineBackend) -> Vec<MatchTable> {
        match backend {
            // The compiled scorer emits the weighted half-open score.
            EngineBackend::CgraSim => vec![anomaly_post_table(self.threshold)],
            // The heuristic already thresholds internally and emits 0/1.
            EngineBackend::Threshold => vec![anomaly_post_table(1)],
        }
    }

    fn verdict_policy(&self) -> VerdictPolicy {
        VerdictPolicy::Enforce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1_shape() {
        let apps = registry();
        assert_eq!(apps.len(), 10);
        let security = apps.iter().filter(|a| a.security).count();
        assert_eq!(security, 5, "five security rows");
        assert!(apps.iter().any(|a| a.name.contains("SYN Flood") && a.reaction.len() == 3));
    }

    #[test]
    fn detector_trains_and_compiles() {
        let d = AnomalyDetector::train_default(1, 3_000);
        assert!(d.offline_f1 > 40.0, "offline F1 {}", d.offline_f1);
        assert!(d.program.resources.cus > 10, "DNN uses many CUs");
        assert!(d.program.timing.initiation_interval == 1, "line rate");
        assert!(d.weight_bytes() < 5_600, "weights beat flow rules: {}", d.weight_bytes());
    }

    #[test]
    fn format_features_produces_codes() {
        let d = AnomalyDetector::train_default(2, 1_000);
        let codes = d.format_features(&[1.0, 0.45, 5.0, 4.0, 2.0, 2.0]);
        assert_eq!(codes.len(), 6);
        assert!(codes.iter().all(|&c| (-128..=127).contains(&c)));
    }

    #[test]
    fn syn_flood_scorer_compiles_to_line_rate() {
        let d = SynFloodDetector::default_deployment();
        assert_eq!(d.program.timing.initiation_interval, 1, "line rate");
        assert_eq!(d.program.graph.input_width(), 4);
        // Tiny relative to the DNN: a couple of units.
        assert!(d.program.resources.cus <= 4, "{} CUs", d.program.resources.cus);
    }

    #[test]
    fn syn_flood_engine_separates_floods_from_established_flows() {
        use taurus_pisa::InferenceEngine;
        let d = SynFloodDetector::default_deployment();
        let mut engine = d.build_engine(EngineBackend::CgraSim);
        // 20 half-open SYNs fanning into one host/service: well past 40.
        let flood = engine.infer(&[20, 20, 20, 20]);
        assert!(flood >= d.threshold, "flood score {flood}");
        // A long-lived established flow: one SYN, many packets.
        let benign = engine.infer(&[1, 2, 2, 120]);
        assert!(benign < d.threshold, "benign score {benign}");
    }

    #[test]
    fn syn_flood_backends_agree_on_verdict_boundary() {
        use taurus_pisa::InferenceEngine;
        let d = SynFloodDetector::default_deployment();
        let mut cgra = d.build_engine(EngineBackend::CgraSim);
        let mut heur = d.build_engine(EngineBackend::Threshold);
        // The heuristic applies the same weights, so the 0/1 flag must
        // equal "CGRA score ≥ threshold" on every probe — including the
        // long-lived benign flow the negative weight protects.
        for x in [[20, 20, 20, 20], [1, 2, 2, 120], [10, 5, 5, 10], [0, 0, 0, 0], [8, 8, 8, 8]] {
            let score = cgra.infer(&x);
            assert_eq!(heur.infer(&x), i64::from(score >= d.threshold), "features {x:?}");
        }
    }

    #[test]
    fn apps_declare_their_contracts() {
        let d = SynFloodDetector::default_deployment();
        assert_eq!(d.name(), "syn-flood");
        assert_eq!(d.reaction_time(), ReactionTime::PerPacket);
        assert_eq!(d.feature_count(), 4);
        assert!(d.program().is_some());
        assert_eq!(d.verdict_policy(), VerdictPolicy::Enforce);
        assert_eq!(d.pre_tables().len(), 1);
        assert_eq!(d.post_tables(EngineBackend::CgraSim).len(), 1);
    }
}
