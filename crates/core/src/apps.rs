//! In-network applications: the Table 1 registry and the §5.2.2
//! anomaly-detection bundle.

use serde::{Deserialize, Serialize};
use taurus_compiler::{compile, frontend, CompileOptions, GridConfig, GridProgram};
use taurus_dataset::kdd::{FeatureView, KddGenerator};
use taurus_dataset::Standardizer;
use taurus_ml::mlp::MlpConfig;
use taurus_ml::{Mlp, QuantizedMlp, TrainParams};

/// Reaction-time classes from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReactionTime {
    /// Must decide on every packet.
    PerPacket,
    /// Per flowlet (burst of a flow).
    PerFlowlet,
    /// Per flow.
    PerFlow,
    /// Per microburst.
    PerMicroburst,
}

/// One Table 1 row: an in-network application and its demanded reaction
/// times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AppInfo {
    /// Application name as printed in Table 1.
    pub name: &'static str,
    /// Security (true) or performance (false) category.
    pub security: bool,
    /// Demanded reaction granularities.
    pub reaction: &'static [ReactionTime],
}

/// The Table 1 application registry.
pub fn registry() -> Vec<AppInfo> {
    use ReactionTime::*;
    vec![
        AppInfo { name: "Heavy Hitters", security: true, reaction: &[PerPacket] },
        AppInfo {
            name: "DoS (e.g., SYN Flood)",
            security: true,
            reaction: &[PerPacket, PerFlow, PerMicroburst],
        },
        AppInfo { name: "Probes (e.g., Port Scan)", security: true, reaction: &[PerFlow] },
        AppInfo { name: "U2R: Unauth. Access to Root", security: true, reaction: &[PerFlow] },
        AppInfo { name: "R2L: Unauth. Remote Access", security: true, reaction: &[PerFlow] },
        AppInfo { name: "Congestion Control", security: false, reaction: &[PerPacket] },
        AppInfo { name: "Active Queue Mgmt (AQM)", security: false, reaction: &[PerPacket] },
        AppInfo {
            name: "Traffic Classification",
            security: false,
            reaction: &[PerFlowlet, PerFlow],
        },
        AppInfo { name: "Load Balancing", security: false, reaction: &[PerPacket, PerFlowlet] },
        AppInfo {
            name: "Switching and Routing",
            security: false,
            reaction: &[PerPacket, PerFlowlet],
        },
    ]
}

/// The complete anomaly-detection application: trained float model,
/// quantized deployment model, feature standardizer, compiled grid
/// program, and decision threshold.
#[derive(Debug)]
pub struct AnomalyDetector {
    /// The control plane's float model (used by the baseline and for
    /// online training).
    pub float_model: Mlp,
    /// The int8 deployment model (the golden reference for the switch).
    pub quantized: QuantizedMlp,
    /// Standardizer fitted on the training features.
    pub standardizer: Standardizer,
    /// The compiled MapReduce program.
    pub program: GridProgram,
    /// Output code meaning "anomalous" (quantized 0.5 of the sigmoid).
    pub threshold_code: i64,
    /// Offline F1 (×100) on the held-out connection test set.
    pub offline_f1: f64,
}

impl AnomalyDetector {
    /// Trains the paper's 4-layer DNN (6 → 12 → 6 → 3 → 1, §5.1.2) on
    /// synthetic KDD-like connection records, quantizes it, and compiles
    /// it for the default grid.
    ///
    /// This is the *connection-record* training path used for Table 5 and
    /// quick starts; the end-to-end harness retrains on stream-extracted
    /// features (see `e2e::build_detector_from_trace`).
    pub fn train_default(seed: u64, n_records: usize) -> Self {
        let mut gen = KddGenerator::new(seed);
        let mut ds = gen.binary_dataset(n_records, FeatureView::Dnn6);
        ds.shuffle(seed ^ 0x5151);
        let standardizer = Standardizer::fit(&ds);
        let mut ds_std = ds;
        standardizer.apply(&mut ds_std);
        let (train, test) = ds_std.split(0.8);
        Self::from_data(
            train.features().to_vec(),
            train.labels().to_vec(),
            test.features().to_vec(),
            test.labels().to_vec(),
            standardizer,
            seed,
        )
    }

    /// Builds the detector from explicit standardized train/test splits.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or widths differ from the
    /// DNN's six inputs.
    pub fn from_data(
        train_x: Vec<Vec<f32>>,
        train_y: Vec<usize>,
        test_x: Vec<Vec<f32>>,
        test_y: Vec<usize>,
        standardizer: Standardizer,
        seed: u64,
    ) -> Self {
        assert!(!train_x.is_empty(), "empty training set");
        assert!(train_x.iter().all(|x| x.len() == 6), "AD DNN takes 6 features");
        let cfg = MlpConfig::anomaly_dnn();
        let mut model = Mlp::new(&cfg, seed);
        model.train(
            &train_x,
            &train_y,
            &TrainParams { epochs: 30, lr: 0.08, ..TrainParams::default() },
        );
        let quantized = QuantizedMlp::quantize(&model, &train_x);
        let graph = frontend::mlp_to_graph(&quantized);
        let program = compile(&graph, &GridConfig::default(), &CompileOptions::default())
            .expect("AD DNN fits the default grid");
        let threshold_code = i64::from(quantized.output_params().quantize(0.5));
        let offline_f1 = taurus_ml::BinaryMetrics::from_pairs(
            test_x
                .iter()
                .zip(&test_y)
                .map(|(x, &y)| (quantized.predict_class(x) == 1, y == 1)),
        )
        .f1_percent();
        Self { float_model: model, quantized, standardizer, program, threshold_code, offline_f1 }
    }

    /// Encodes standardized features into the model's int8 input codes.
    pub fn encode(&self, standardized: &[f32]) -> Vec<i32> {
        self.quantized
            .quantize_input(standardized)
            .into_iter()
            .map(i32::from)
            .collect()
    }

    /// Standardizes raw stream features then encodes them.
    pub fn format_features(&self, raw: &[f32]) -> Vec<i32> {
        let mut row = raw.to_vec();
        self.standardizer.apply_row(&mut row);
        self.encode(&row)
    }

    /// Validates the paper's sanity check: the DNN's weights occupy a few
    /// KB, versus megabytes of equivalent flow rules (§3).
    pub fn weight_bytes(&self) -> usize {
        self.quantized.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1_shape() {
        let apps = registry();
        assert_eq!(apps.len(), 10);
        let security = apps.iter().filter(|a| a.security).count();
        assert_eq!(security, 5, "five security rows");
        assert!(apps
            .iter()
            .any(|a| a.name.contains("SYN Flood") && a.reaction.len() == 3));
    }

    #[test]
    fn detector_trains_and_compiles() {
        let d = AnomalyDetector::train_default(1, 3_000);
        assert!(d.offline_f1 > 40.0, "offline F1 {}", d.offline_f1);
        assert!(d.program.resources.cus > 10, "DNN uses many CUs");
        assert!(d.program.timing.initiation_interval == 1, "line rate");
        assert!(d.weight_bytes() < 5_600, "weights beat flow rules: {}", d.weight_bytes());
    }

    #[test]
    fn format_features_produces_codes() {
        let d = AnomalyDetector::train_default(2, 1_000);
        let codes = d.format_features(&[1.0, 0.45, 5.0, 4.0, 2.0, 2.0]);
        assert_eq!(codes.len(), 6);
        assert!(codes.iter().all(|&c| (-128..=127).contains(&c)));
    }
}
