//! Taurus: a per-packet ML data plane — the integration crate.
//!
//! This crate assembles the full system the paper describes: the PISA
//! pipeline (`taurus-pisa`) around the compiled MapReduce block executed
//! by the cycle-level CGRA simulator (`taurus-cgra`), with models trained
//! and quantized by `taurus-ml`, lowered by `taurus-compiler`, and
//! costed by `taurus-hw-model`.
//!
//! - [`app`]: the [`app::TaurusApp`] trait — one per-packet ML
//!   application as a self-contained bundle (engine factory, feature
//!   formatter, MATs, verdict policy, reaction time).
//! - [`apps`]: the in-network application registry (Table 1) and the
//!   concrete apps: the anomaly-detection DNN (§5.2.2) and the
//!   SYN-flood scorer (Table 1's DoS row).
//! - [`engine`]: the [`engine::CgraEngine`] adapter that plugs the CGRA
//!   simulator into a pipeline's inference slot (owns its compiled
//!   program via `Arc` — no borrow lifetimes).
//! - [`ingest`]: the trace → data-plane front end ([`ingest::to_packet`]
//!   and [`ingest::ObsBuilder`]), shared by the sequential switch, the
//!   e2e harness, and the sharded runtime so every consumer derives
//!   identical register-stage observations.
//! - [`switch`]: [`switch::TaurusSwitch`] and [`switch::SwitchBuilder`],
//!   the public per-packet device API (Fig. 6's full pipeline, bypass
//!   included), hosting any number of apps side by side.
//! - [`update`]: live model updates ([`update::ModelUpdate`]) — the
//!   versioned weight bundle the control plane installs onto running
//!   switches ([`switch::TaurusSwitch::install_update`]): program swap
//!   for CGRA engines, in-place edits for threshold engines, new
//!   formatter/MATs when quantization ranges move.
//! - [`e2e`]: the end-to-end experiment harness comparing Taurus against
//!   the control-plane baseline over identical traces (Table 8).
//!
//! # Quickstart
//!
//! ```
//! use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
//! use taurus_core::{e2e, SwitchBuilder};
//!
//! // Train + quantize + compile the paper's anomaly-detection DNN on a
//! // small synthetic workload, then push packets through the switch.
//! let detector = AnomalyDetector::train_default(42, 2_000);
//! let report = e2e::run_taurus_only(&detector, 500, 99);
//! assert!(report.f1_percent > 0.0);
//!
//! // The same switch can host more apps, each with its own counters.
//! let switch = SwitchBuilder::new()
//!     .register(&detector)
//!     .register(&SynFloodDetector::default_deployment())
//!     .build();
//! assert_eq!(switch.report().apps.len(), 2);
//! ```

pub mod app;
pub mod apps;
pub mod e2e;
pub mod engine;
pub mod ingest;
pub mod switch;
pub mod update;

pub use app::{
    BoxedEngine, EngineBackend, FeatureFormatter, SwitchEngine, TaurusApp, VerdictPolicy,
};
pub use apps::{AnomalyDetector, ReactionTime, SynFloodDetector};
pub use engine::CgraEngine;
pub use ingest::{IngestError, IngestValidator, ObsBuilder};
pub use switch::{
    AppCounters, AppReport, DuplicateAppError, ReportMergeError, SwitchBuilder, SwitchReport,
    SwitchResult, SwitchVerdict, TaurusSwitch,
};
pub use update::{EngineUpdate, FormatterFactory, ModelUpdate, RollbackPoint, UpdateError};
