//! Taurus: a per-packet ML data plane — the integration crate.
//!
//! This crate assembles the full system the paper describes: the PISA
//! pipeline (`taurus-pisa`) around the compiled MapReduce block executed
//! by the cycle-level CGRA simulator (`taurus-cgra`), with models trained
//! and quantized by `taurus-ml`, lowered by `taurus-compiler`, and
//! costed by `taurus-hw-model`.
//!
//! - [`engine`]: the [`engine::CgraEngine`] adapter that plugs the CGRA
//!   simulator into the pipeline's inference slot.
//! - [`switch`]: [`switch::TaurusSwitch`], the public per-packet device
//!   API (Fig. 6's full pipeline, bypass included).
//! - [`apps`]: the in-network application registry (Table 1) and the
//!   anomaly-detection application bundle (§5.2.2).
//! - [`e2e`]: the end-to-end experiment harness comparing Taurus against
//!   the control-plane baseline over identical traces (Table 8).
//!
//! # Quickstart
//!
//! ```
//! use taurus_core::apps::AnomalyDetector;
//! use taurus_core::e2e;
//!
//! // Train + quantize + compile the paper's anomaly-detection DNN on a
//! // small synthetic workload, then push packets through the switch.
//! let detector = AnomalyDetector::train_default(42, 2_000);
//! let report = e2e::run_taurus_only(&detector, 500, 99);
//! assert!(report.f1_percent > 0.0);
//! ```

pub mod apps;
pub mod e2e;
pub mod engine;
pub mod switch;

pub use apps::AnomalyDetector;
pub use engine::CgraEngine;
pub use switch::{SwitchReport, TaurusSwitch};
