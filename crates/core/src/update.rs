//! Live model updates: [`ModelUpdate`], the versioned artifact the
//! control plane installs onto running switches (§5.2.3, Figs. 13–14).
//!
//! The paper's operational claim is that retrained weights reach the
//! data plane at flow-rule latency with no packet loss. This module
//! defines what actually crosses that boundary: a named, versioned
//! bundle of
//!
//! - exported float weights ([`taurus_ml::MlpWeights`], the control
//!   plane's source of truth, kept for audit/telemetry),
//! - an [`EngineUpdate`]: a freshly compiled MapReduce program to swap
//!   into CGRA engines via `Arc` retargeting, a new cutoff for
//!   threshold engines (updated in place), or "keep the engine"
//!   (formatter/table-only updates),
//! - optionally a new feature-formatter factory (quantization ranges
//!   move with the weights) and new postprocessing MATs (the verdict
//!   threshold lives in the model's output code domain).
//!
//! An update is *prepared once* (quantize + compile on the control
//! plane — see [`crate::apps::AnomalyDetector::prepare_update`]) and
//! then installed on any number of replicas: all shards of a sharded
//! runtime share the same compiled program through the `Arc`.
//! Installation is transactional per app — validation happens before
//! any mutation, so a failed install leaves the switch untouched —
//! and versions are strictly increasing, which lets a distributed
//! installer reason about which replicas have converged.

use std::sync::Arc;

use taurus_compiler::GridProgram;
use taurus_ml::MlpWeights;
use taurus_pisa::mat::MatchTable;
use taurus_pisa::pipeline::FeatureFormatter;

/// Builds fresh [`FeatureFormatter`]s for an update: each replica's
/// pipeline needs its own boxed closure, so updates carry the factory
/// rather than one formatter instance.
pub type FormatterFactory = Arc<dyn Fn() -> FeatureFormatter + Send + Sync>;

/// How an update changes the hosted app's inference engine.
#[derive(Clone)]
pub enum EngineUpdate {
    /// Swap in a freshly compiled MapReduce program (CGRA engines): the
    /// engine retargets its shared program handle — one compilation
    /// serves every replica.
    Program(Arc<GridProgram>),
    /// Rewrite a threshold engine's cutoff in place (the
    /// [`taurus_pisa::pipeline::ThresholdEngine`] /
    /// [`taurus_pisa::LinearThresholdEngine`] backends).
    Threshold(i64),
    /// Leave the engine untouched (formatter- or table-only updates).
    KeepEngine,
}

impl core::fmt::Debug for EngineUpdate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineUpdate::Program(p) => {
                write!(f, "Program(latency {} ns)", p.timing.latency_ns.round())
            }
            EngineUpdate::Threshold(t) => write!(f, "Threshold({t})"),
            EngineUpdate::KeepEngine => write!(f, "KeepEngine"),
        }
    }
}

/// A versioned model update for one hosted app.
#[derive(Clone)]
pub struct ModelUpdate {
    /// Target app ([`crate::app::TaurusApp::name`]).
    pub app: String,
    /// Strictly increasing per-app version; installs of a version at or
    /// below the installed one are rejected (idempotence under retry,
    /// and no accidental rollback through a reordered channel).
    pub version: u64,
    /// The float weights this update was built from, when it came from
    /// retraining (`None` for e.g. threshold retunes).
    pub weights: Option<MlpWeights>,
    /// The engine-side change.
    pub engine: EngineUpdate,
    /// Replacement feature formatter, if quantization ranges moved with
    /// the weights.
    pub formatter: Option<FormatterFactory>,
    /// Replacement postprocessing MATs, if the verdict threshold moved
    /// with the model's output quantization.
    pub post_tables: Option<Vec<MatchTable>>,
}

impl ModelUpdate {
    /// A minimal threshold retune: update the engine cutoff in place,
    /// keep formatter and tables.
    pub fn retune_threshold(app: impl Into<String>, version: u64, threshold: i64) -> Self {
        Self {
            app: app.into(),
            version,
            weights: None,
            engine: EngineUpdate::Threshold(threshold),
            formatter: None,
            post_tables: None,
        }
    }
}

impl core::fmt::Debug for ModelUpdate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ModelUpdate")
            .field("app", &self.app)
            .field("version", &self.version)
            .field("engine", &self.engine)
            .field("weights", &self.weights.as_ref().map(|w| w.shape()))
            .field("new_formatter", &self.formatter.is_some())
            .field("new_post_tables", &self.post_tables.as_ref().map(Vec::len))
            .finish()
    }
}

/// Everything needed to restore a hosted app to a prior model,
/// bit-exactly: the engine state (program handle or threshold), the
/// formatter factory the app was registered/updated with, the
/// postprocessing MATs, and the version to report afterwards.
///
/// Captured by [`crate::switch::TaurusSwitch::capture_rollback`] just
/// before a risky install (a canary) and replayed by
/// [`crate::switch::TaurusSwitch::rollback_to`]. Restoration is exact
/// because every piece is either shared-by-handle (`Arc<GridProgram>`),
/// a value (`i64` threshold, MATs), or rebuilt from the same factory
/// the original formatter came from — there is no lossy re-derivation.
#[derive(Clone)]
pub struct RollbackPoint {
    /// The app this snapshot belongs to.
    pub app: String,
    /// Version to restore (rollback deliberately rewinds the version
    /// counter, unlike installs which are strictly increasing).
    pub version: u64,
    /// Engine state to restore, in [`EngineUpdate`] form.
    pub engine: EngineUpdate,
    /// Factory for the formatter that was active at capture time.
    pub formatter: FormatterFactory,
    /// Postprocessing MATs active at capture time.
    pub post_tables: Vec<MatchTable>,
}

impl core::fmt::Debug for RollbackPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RollbackPoint")
            .field("app", &self.app)
            .field("version", &self.version)
            .field("engine", &self.engine)
            .field("post_tables", &self.post_tables.len())
            .finish()
    }
}

/// Why a [`ModelUpdate`] could not be installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// No hosted app has the update's name.
    UnknownApp {
        /// The update's target name.
        app: String,
    },
    /// The update's version is not greater than the installed one.
    StaleVersion {
        /// The app.
        app: String,
        /// Version currently installed.
        installed: u64,
        /// Version the update offered.
        offered: u64,
    },
    /// The engine update does not match the hosted engine's backend
    /// (e.g. a compiled program offered to a threshold engine).
    BackendMismatch {
        /// The app.
        app: String,
    },
    /// A rollback point was requested for an app whose formatter cannot
    /// be rebuilt: the app provides no
    /// [`crate::app::TaurusApp::formatter_factory`] and no installed
    /// update ever carried one, so the active formatter is a one-off
    /// closure that cannot be restored bit-exactly later.
    UnrestorableFormatter {
        /// The app.
        app: String,
    },
}

impl core::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UpdateError::UnknownApp { app } => {
                write!(f, "no app named `{app}` is hosted on this switch")
            }
            UpdateError::StaleVersion { app, installed, offered } => write!(
                f,
                "stale update for `{app}`: version {offered} offered but {installed} already \
                 installed (versions must strictly increase)"
            ),
            UpdateError::BackendMismatch { app } => write!(
                f,
                "update for `{app}` targets a different engine backend than the hosted one \
                 (program swaps need a CGRA engine; threshold edits need a threshold engine)"
            ),
            UpdateError::UnrestorableFormatter { app } => write!(
                f,
                "app `{app}` cannot be rolled back: its active feature formatter has no \
                 factory to rebuild it from (implement `TaurusApp::formatter_factory`)"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}
