//! Trace → data-plane ingest: the parser-adjacent bookkeeping a switch
//! front end performs before packets enter any pipeline.
//!
//! Two things live here, shared by the sequential switch
//! ([`crate::switch::TaurusSwitch`]), the e2e harness
//! ([`crate::e2e::extract_stream_features`]), and the sharded runtime
//! (`taurus-runtime`):
//!
//! - [`to_packet`]: a [`TracePacket`] rendered as the on-the-wire
//!   [`Packet`] the parser consumes.
//! - [`ObsBuilder`]: the register-stage observation builder — direction
//!   from SYN-side bookkeeping, flow start from first-seen, and the
//!   three register keys (flow / destination-host / destination-service).
//!
//! Keeping this logic in one place is what makes "training and the data
//! plane see identical features" (§5.2.2) checkable: every consumer of a
//! trace derives [`PacketObs`] the same way.

use std::collections::HashSet;
use std::fmt;

use taurus_dataset::trace::{TracePacket, TCP_ACK, TCP_SYN};
use taurus_pisa::registers::PacketObs;
use taurus_pisa::Packet;

/// Smallest wire length the frontier admits (the Ethernet minimum frame
/// size the trace generator also clamps to). Anything shorter is a
/// truncated capture, not a packet.
pub const MIN_WIRE_LEN: u16 = 64;

/// Largest wire length the frontier admits (standard MTU-sized frames,
/// the trace generator's upper clamp). Anything longer overflowed a
/// field somewhere upstream.
pub const MAX_WIRE_LEN: u16 = 1500;

/// Why the ingest frontier refused a [`TracePacket`].
///
/// These are *quarantine* reasons, not panics: a malformed record in a
/// replayed capture (truncated length, a port field that was never
/// populated, a timestamp that runs backwards) must cost exactly one
/// counter increment and zero state mutations — the hardened analogue
/// of a switch parser dropping a malformed frame at the MAC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngestError {
    /// `len == 0`: a zero-length flow record, no payload to observe.
    ZeroLength,
    /// `0 < len <` [`MIN_WIRE_LEN`]: a truncated capture.
    Truncated {
        /// The offending wire length.
        len: u16,
    },
    /// `len >` [`MAX_WIRE_LEN`]: an overflowed length field.
    Oversized {
        /// The offending wire length.
        len: u16,
    },
    /// A TCP/UDP packet with a zero source or destination port — the
    /// classic garbage-field signature of an uninitialized record.
    GarbagePort,
    /// An IP protocol number outside the trace vocabulary
    /// (TCP 6 / UDP 17 / ICMP 1).
    UnknownProtocol {
        /// The offending protocol number.
        proto: u8,
    },
    /// The timestamp runs backwards relative to the last *admitted*
    /// packet of the same feed — into the middle of the range already
    /// observed, so it is a corrupt record, not a capture replay
    /// (regressions to at-or-before the feed's opening timestamp are
    /// restarts; operators legitimately loop a trace, and the
    /// validator's clock rewinds with it). Detected only by the
    /// stateful [`IngestValidator`]; the pure [`validate_wire`] check
    /// cannot see it.
    NonMonotonicTimestamp,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::ZeroLength => write!(f, "zero-length flow record"),
            IngestError::Truncated { len } => {
                write!(f, "truncated wire length {len} (minimum {MIN_WIRE_LEN})")
            }
            IngestError::Oversized { len } => {
                write!(f, "oversized wire length {len} (maximum {MAX_WIRE_LEN})")
            }
            IngestError::GarbagePort => write!(f, "TCP/UDP packet with a zero port"),
            IngestError::UnknownProtocol { proto } => {
                write!(f, "unknown IP protocol {proto} (expected 6, 17, or 1)")
            }
            IngestError::NonMonotonicTimestamp => {
                write!(f, "timestamp runs backwards within a feed")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// The order-free validity checks: everything [`IngestValidator`]
/// enforces except timestamp monotonicity, derived from the packet
/// alone. A parallel parse stage could run this on any worker — but the
/// runtime deliberately validates in its *merge* stage (arrival order)
/// so inline and pipelined ingest quarantine identically, error-priority
/// included.
pub fn validate_wire(tp: &TracePacket) -> Result<(), IngestError> {
    if tp.len == 0 {
        return Err(IngestError::ZeroLength);
    }
    if tp.len < MIN_WIRE_LEN {
        return Err(IngestError::Truncated { len: tp.len });
    }
    if tp.len > MAX_WIRE_LEN {
        return Err(IngestError::Oversized { len: tp.len });
    }
    match tp.tuple.proto {
        6 | 17 => {
            if tp.tuple.src_port == 0 || tp.tuple.dst_port == 0 {
                return Err(IngestError::GarbagePort);
            }
        }
        1 => {} // ICMP carries no ports; zeros are legitimate.
        proto => return Err(IngestError::UnknownProtocol { proto }),
    }
    Ok(())
}

/// The stateful ingest frontier: wire validity plus per-feed timestamp
/// monotonicity with capture-replay tolerance.
///
/// One validator guards one packet stream. Quarantined packets leave
/// *no* trace in it — in particular, a garbage `u64::MAX` timestamp
/// does not poison the frontier for every packet after it; only
/// *admitted* packets advance the clock. The clock rewinds in two
/// legitimate cases:
///
/// - at each feed boundary ([`IngestValidator::start_feed`]) — a feed
///   is the replay unit;
/// - on a **restart**: a regression to at-or-before the feed's opening
///   timestamp. Operators loop a capture back to back *within* one
///   feed (the runtime's own tests replay concatenated traces), and a
///   restarted trace by construction begins where the feed began. A
///   regression into the *middle* of the observed range matches no
///   replay pattern and quarantines as
///   [`IngestError::NonMonotonicTimestamp`].
#[derive(Debug, Clone, Default)]
pub struct IngestValidator {
    /// Timestamp of the first admitted packet of the current feed — the
    /// restart watermark.
    feed_start_ts: Option<u64>,
    /// Timestamp of the last admitted packet of the current feed.
    last_ts_ns: Option<u64>,
}

impl IngestValidator {
    /// A fresh validator with no admitted packets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds the monotonicity clock for a new feed (timestamps may
    /// legitimately restart when a capture is replayed).
    pub fn start_feed(&mut self) {
        self.feed_start_ts = None;
        self.last_ts_ns = None;
    }

    /// Admits or quarantines one packet: the [`validate_wire`] checks,
    /// then monotonicity against the last admitted packet (with the
    /// restart tolerance described on the type). On `Ok` the clock
    /// advances; on `Err` the validator is untouched.
    pub fn admit(&mut self, tp: &TracePacket) -> Result<(), IngestError> {
        validate_wire(tp)?;
        if let (Some(start), Some(last)) = (self.feed_start_ts, self.last_ts_ns) {
            if tp.ts_ns < last && tp.ts_ns > start {
                return Err(IngestError::NonMonotonicTimestamp);
            }
            // A regression to at-or-before the opening timestamp is a
            // capture replay: rewind the watermark with the restart so
            // later copies (or an earlier-starting capture) are judged
            // against their own origin.
            if tp.ts_ns < start {
                self.feed_start_ts = Some(tp.ts_ns);
            }
        } else {
            self.feed_start_ts = Some(tp.ts_ns);
        }
        self.last_ts_ns = Some(tp.ts_ns);
        Ok(())
    }
}

/// Renders a trace packet as the wire packet the parser consumes.
pub fn to_packet(tp: &TracePacket) -> Packet {
    let mut p = Packet::tcp(0, 0, 0, 0, 0, 0);
    to_packet_into(tp, &mut p);
    p
}

/// In-place variant of [`to_packet`]: overwrites a resident [`Packet`]
/// with the trace packet's wire form. Hot ingest loops (the sharded
/// runtime's batch arena) rewrite recycled slots with this instead of
/// constructing and copying a fresh value per packet.
pub fn to_packet_into(tp: &TracePacket, p: &mut Packet) {
    *p = Packet::tcp(
        tp.tuple.src_ip,
        tp.tuple.dst_ip,
        tp.tuple.src_port,
        tp.tuple.dst_port,
        tp.tcp_flags,
        tp.len,
    );
    p.proto = tp.tuple.proto;
    p.ts_ns = tp.ts_ns;
}

/// The order-free half of an observation: everything [`PacketObs`]
/// carries except `is_flow_start`, derived from the packet alone (keys
/// from the canonical tuple and responder endpoint, direction, wire
/// fields). Because it needs no cross-packet state, a parallel ingest
/// pipeline can compute it on any worker, for any packet, in any order
/// — only the first-seen bit (see [`ObsBuilder::mark_seen`]) remains
/// order-bound. `obs.is_flow_start` is left `false`.
pub fn wire_obs(tp: &TracePacket, obs: &mut PacketObs) {
    let canonical = tp.tuple.canonical();
    // The responder is the destination of forward packets.
    let (resp_ip, resp_port) = if tp.reverse {
        (tp.tuple.src_ip, tp.tuple.src_port)
    } else {
        (tp.tuple.dst_ip, tp.tuple.dst_port)
    };
    *obs = PacketObs {
        flow_key: canonical.hash(),
        dst_key: u64::from(resp_ip).wrapping_mul(0x9E3779B97F4A7C15),
        srv_key: (u64::from(resp_ip) << 16 | u64::from(resp_port)).wrapping_mul(0x9E3779B97F4A7C15),
        reverse: tp.reverse,
        is_flow_start: false,
        len: tp.len,
        tcp_flags: tp.tcp_flags,
        proto: tp.tuple.proto,
        ts_ns: tp.ts_ns,
    };
}

/// Whether a packet's flags qualify it as a flow start *if* it is the
/// connection's first packet: non-TCP always does, TCP requires a bare
/// SYN (SYN set, ACK clear). Packet-local, so a parallel parse stage
/// can precompute it; the order-bound first-seen bit is resolved
/// separately ([`ObsBuilder::mark_seen`]).
pub fn flow_start_flags_ok(tp: &TracePacket) -> bool {
    tp.tuple.proto != 6 || tp.tcp_flags & TCP_SYN != 0 && tp.tcp_flags & TCP_ACK == 0
}

/// Builds register-stage observations the way hardware would, tracking
/// first-seen connections to mark flow starts. Must observe packets in
/// arrival order; one builder per packet stream.
///
/// The *untracked* variant ([`ObsBuilder::untracked`]) keeps no
/// first-seen set at all: it leaves `is_flow_start` false and expects a
/// keyed flow table (or flow directory) downstream to resolve starts by
/// table-miss semantics — the configuration that deletes the unbounded
/// per-connection `HashSet` from long-lived keyed-mode streams.
#[derive(Debug, Clone)]
pub struct ObsBuilder {
    /// `Some`: the classic tracked builder. `None`: untracked — flow
    /// starts are somebody else's (the keyed table's) problem.
    seen_flows: Option<HashSet<u32>>,
}

impl Default for ObsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsBuilder {
    /// A fresh tracked builder with no flows seen.
    pub fn new() -> Self {
        Self { seen_flows: Some(HashSet::new()) }
    }

    /// A builder that never tracks connections and never marks a flow
    /// start, for keyed-mode streams where a miss in the keyed flow
    /// table *is* the flow start. Holds no per-connection state, so its
    /// memory is O(1) regardless of stream length.
    pub fn untracked() -> Self {
        Self { seen_flows: None }
    }

    /// Whether this builder tracks first-seen connections.
    pub fn is_tracked(&self) -> bool {
        self.seen_flows.is_some()
    }

    /// Builds the observation for one packet: direction from SYN-side
    /// bookkeeping, flow start from first-seen (TCP flows additionally
    /// require a bare SYN), keys from the canonical tuple and responder
    /// endpoint.
    pub fn observe(&mut self, tp: &TracePacket) -> PacketObs {
        let mut obs = PacketObs::default();
        self.observe_into(tp, &mut obs);
        obs
    }

    /// In-place variant of [`ObsBuilder::observe`]: overwrites a
    /// resident [`PacketObs`] (a recycled batch-arena slot) instead of
    /// returning a fresh value.
    pub fn observe_into(&mut self, tp: &TracePacket, obs: &mut PacketObs) {
        wire_obs(tp, obs);
        obs.is_flow_start = self.mark_seen(tp.conn_id) && flow_start_flags_ok(tp);
    }

    /// Records that `conn_id` has been observed, returning whether this
    /// is its first sighting (always `false` untracked). This is the
    /// *only* order-bound piece of observation building: a parallel
    /// ingest pipeline calls it from its merge stage, in global arrival
    /// order, on the per-epoch first-seen candidates its parse workers
    /// pre-filtered — every other packet of a connection inside an epoch
    /// is provably not the global first, so the merge stage touches this
    /// set once per (connection, epoch), not once per packet.
    pub fn mark_seen(&mut self, conn_id: u32) -> bool {
        match &mut self.seen_flows {
            Some(seen) => seen.insert(conn_id),
            None => false,
        }
    }

    /// Forgets all seen flows (between experiment phases).
    pub fn reset(&mut self) {
        if let Some(seen) = &mut self.seen_flows {
            seen.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::{PacketTrace, TraceConfig};

    #[test]
    fn flow_start_marked_once_per_connection() {
        let records = KddGenerator::new(91).take(60);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let mut b = ObsBuilder::new();
        let mut starts = 0usize;
        for tp in &trace.packets {
            if b.observe(tp).is_flow_start {
                starts += 1;
            }
        }
        assert!(starts > 0);
        assert!(starts <= trace.records.len(), "at most one start per connection");
        // A second pass over the same stream marks no starts at all.
        assert!(trace.packets.iter().all(|tp| !b.observe(tp).is_flow_start));
        b.reset();
        assert!(b.observe(&trace.packets[0]).is_flow_start || trace.packets[0].tuple.proto == 6);
    }

    #[test]
    fn both_directions_share_flow_key_but_not_direction() {
        let records = KddGenerator::new(92).take(120);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let mut b = ObsBuilder::new();
        let obs: Vec<_> = trace.packets.iter().map(|tp| (tp, b.observe(tp))).collect();
        let rev = obs.iter().find(|(tp, _)| tp.reverse).expect("has reverse packets");
        let fwd = obs
            .iter()
            .find(|(tp, _)| !tp.reverse && tp.conn_id == rev.0.conn_id)
            .expect("same connection seen forward");
        assert_eq!(fwd.1.flow_key, rev.1.flow_key, "canonical key is direction-free");
        assert_eq!(fwd.1.dst_key, rev.1.dst_key, "responder key is direction-free");
        assert!(!fwd.1.reverse && rev.1.reverse);
    }

    #[test]
    fn wire_obs_plus_mark_seen_reassembles_observe_exactly() {
        // The split the parallel ingest pipeline relies on: the
        // order-free wire observation plus the order-bound first-seen
        // bit, applied in arrival order, must equal the classic
        // sequential builder bit for bit.
        let records = KddGenerator::new(94).take(120);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let mut classic = ObsBuilder::new();
        let mut split = ObsBuilder::new();
        for tp in &trace.packets {
            let golden = classic.observe(tp);
            let mut obs = PacketObs::default();
            wire_obs(tp, &mut obs);
            assert!(!obs.is_flow_start, "wire_obs never claims a flow start");
            obs.is_flow_start = split.mark_seen(tp.conn_id) && flow_start_flags_ok(tp);
            assert_eq!(obs, golden);
        }
    }

    #[test]
    fn untracked_builder_never_marks_starts_but_matches_wire_fields() {
        let records = KddGenerator::new(95).take(60);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let mut tracked = ObsBuilder::new();
        let mut untracked = ObsBuilder::untracked();
        assert!(tracked.is_tracked());
        assert!(!untracked.is_tracked());
        for tp in &trace.packets {
            let golden = tracked.observe(tp);
            let u = untracked.observe(tp);
            assert!(!u.is_flow_start, "untracked never claims a start");
            assert!(!untracked.mark_seen(tp.conn_id), "mark_seen is inert untracked");
            assert_eq!(PacketObs { is_flow_start: false, ..golden }, u, "wire fields agree");
        }
        untracked.reset(); // inert, but must not panic
    }

    #[test]
    fn generated_traces_pass_the_frontier_untouched() {
        // The validating layer must be a strict no-op on every trace the
        // generator can produce — otherwise hardening would change the
        // accounting of all existing experiments.
        let records = KddGenerator::new(96).take(200);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let mut v = IngestValidator::new();
        v.start_feed();
        for tp in &trace.packets {
            assert_eq!(v.admit(tp), Ok(()), "generated packet quarantined: {tp:?}");
        }
        // Replaying the same capture as a *new* feed is legitimate even
        // though its timestamps restart.
        v.start_feed();
        assert_eq!(v.admit(&trace.packets[0]), Ok(()));
    }

    #[test]
    fn wire_checks_catch_each_malformation_with_fixed_priority() {
        let records = KddGenerator::new(97).take(10);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let good = trace.packets.iter().copied().find(|p| p.tuple.proto == 6).unwrap();
        assert_eq!(validate_wire(&good), Ok(()));

        let mut p = good;
        p.len = 0;
        assert_eq!(validate_wire(&p), Err(IngestError::ZeroLength));
        // Zero length outranks the garbage port it may also carry.
        p.tuple.src_port = 0;
        assert_eq!(validate_wire(&p), Err(IngestError::ZeroLength));

        let mut p = good;
        p.len = MIN_WIRE_LEN - 1;
        assert_eq!(validate_wire(&p), Err(IngestError::Truncated { len: 63 }));
        p.len = MAX_WIRE_LEN + 1;
        assert_eq!(validate_wire(&p), Err(IngestError::Oversized { len: 1501 }));
        p.len = u16::MAX;
        assert_eq!(validate_wire(&p), Err(IngestError::Oversized { len: u16::MAX }));

        let mut p = good;
        p.tuple.dst_port = 0;
        assert_eq!(validate_wire(&p), Err(IngestError::GarbagePort));
        // ICMP has no ports: the same zeros are legitimate there.
        p.tuple.proto = 1;
        assert_eq!(validate_wire(&p), Ok(()));
        p.tuple.proto = 99;
        assert_eq!(validate_wire(&p), Err(IngestError::UnknownProtocol { proto: 99 }));
    }

    #[test]
    fn quarantined_timestamps_do_not_poison_the_clock() {
        let records = KddGenerator::new(98).take(10);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let good = trace.packets.iter().copied().find(|p| p.tuple.proto == 6).unwrap();
        let mut v = IngestValidator::new();
        let at = |ts: u64| {
            let mut p = good;
            p.ts_ns = ts;
            p
        };

        assert_eq!(v.admit(&at(1_000)), Ok(()));
        assert_eq!(v.admit(&at(2_000)), Ok(()));

        // A garbage far-future timestamp on a wire-invalid packet must
        // not advance the clock...
        let mut garbage = at(u64::MAX);
        garbage.len = 0;
        assert_eq!(v.admit(&garbage), Err(IngestError::ZeroLength));

        // ...and neither does a quarantined mid-range regression: the
        // next packet is judged against the last *admitted* timestamp.
        assert_eq!(v.admit(&at(1_500)), Err(IngestError::NonMonotonicTimestamp));

        assert_eq!(v.admit(&at(2_000)), Ok(()), "ties are fine; only strict regressions fail");
    }

    #[test]
    fn replay_restarts_rewind_the_clock_but_corrupt_regressions_do_not() {
        let records = KddGenerator::new(99).take(10);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let good = trace.packets.iter().copied().find(|p| p.tuple.proto == 6).unwrap();
        let mut v = IngestValidator::new();
        let at = |ts: u64| {
            let mut p = good;
            p.ts_ns = ts;
            p
        };

        // First copy of the capture: 1000..=3000.
        assert_eq!(v.admit(&at(1_000)), Ok(()));
        assert_eq!(v.admit(&at(3_000)), Ok(()));
        // Looped back to its own start: a restart, not corruption — the
        // clock rewinds and the second copy is judged on its own terms.
        assert_eq!(v.admit(&at(1_000)), Ok(()));
        assert_eq!(v.admit(&at(2_000)), Ok(()));
        // A regression into the middle of the observed range is still a
        // corrupt record.
        assert_eq!(v.admit(&at(1_500)), Err(IngestError::NonMonotonicTimestamp));
        // A restart *below* the original start lowers the watermark...
        assert_eq!(v.admit(&at(500)), Ok(()));
        assert_eq!(v.admit(&at(800)), Ok(()));
        // ...so the old start is now mid-range, and corrupt there.
        assert_eq!(v.admit(&at(700)), Err(IngestError::NonMonotonicTimestamp));
    }

    #[test]
    fn to_packet_preserves_wire_fields() {
        let records = KddGenerator::new(93).take(40);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        for tp in trace.packets.iter().take(64) {
            let p = to_packet(tp);
            assert_eq!(p.src_ip, tp.tuple.src_ip);
            assert_eq!(p.dst_ip, tp.tuple.dst_ip);
            assert_eq!(p.proto, tp.tuple.proto);
            assert_eq!(p.wire_len, tp.len);
            assert_eq!(p.ts_ns, tp.ts_ns);
            assert_eq!(p.tcp_flags, tp.tcp_flags);
        }
    }
}
