//! Adapter: the CGRA simulator as the pipeline's inference engine.

use std::sync::Arc;

use taurus_cgra::CgraSim;
use taurus_compiler::GridProgram;
use taurus_pisa::InferenceEngine;

/// Runs a compiled MapReduce program as the pipeline's ML block. The
/// engine owns (a shared handle to) its compiled program, so switches
/// built around it carry no borrow lifetimes; it reports the program's
/// measured ingress-to-egress latency so end-to-end packet latency
/// accounting matches the ASIC analysis.
#[derive(Debug)]
pub struct CgraEngine {
    sim: CgraSim,
    latency_ns: u64,
    invocations: u64,
    /// Resident output buffers, refilled in place by
    /// [`CgraSim::process_into`] — steady-state inference allocates
    /// nothing.
    out_buf: Vec<Vec<i32>>,
}

impl CgraEngine {
    /// Wraps a compiled program. Accepts anything convertible into a
    /// shared program handle: an owned [`GridProgram`] or an existing
    /// `Arc<GridProgram>`.
    pub fn new(program: impl Into<Arc<GridProgram>>) -> Self {
        let program = program.into();
        Self {
            latency_ns: program.timing.latency_ns.round() as u64,
            sim: CgraSim::shared(program),
            invocations: 0,
            out_buf: Vec::new(),
        }
    }

    /// Number of inferences executed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Hot-swaps the compiled program (a live model update): the shared
    /// handle is retargeted at the new compilation and a fresh simulator
    /// is built around it, exactly as if the grid's weight memories were
    /// rewritten. Persistent model state (e.g. MU-resident recurrent
    /// state) restarts zeroed — it was computed under the old weights —
    /// while the invocation counter, which describes the device rather
    /// than the model, keeps counting.
    pub fn swap_program(&mut self, program: Arc<GridProgram>) {
        self.latency_ns = program.timing.latency_ns.round() as u64;
        self.sim = CgraSim::shared(program);
    }

    /// The underlying simulator (e.g., to inspect persistent state).
    pub fn sim(&self) -> &CgraSim {
        &self.sim
    }
}

impl InferenceEngine for CgraEngine {
    fn infer(&mut self, features: &[i32]) -> i64 {
        self.invocations += 1;
        self.sim.process_into(features, &mut self.out_buf);
        // The model's first output lane is the verdict value (anomaly
        // score code, class index, …).
        i64::from(self.out_buf.first().and_then(|o| o.first()).copied().unwrap_or(0))
    }

    fn latency_ns(&self) -> u64 {
        self.latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_compiler::{compile, CompileOptions, GridConfig};
    use taurus_ir::microbench;

    #[test]
    fn engine_reports_program_latency_and_output() {
        let g = microbench::inner_product();
        let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
        let latency = p.timing.latency_ns.round() as u64;
        let mut e = CgraEngine::new(p);
        let out = e.infer(&[1; 16]);
        // Weights are (i % 5) − 2 summed over 16 lanes with x = 1.
        let expect: i64 = (0..16).map(|i| (i % 5) - 2).sum();
        assert_eq!(out, expect);
        assert_eq!(e.latency_ns(), latency);
        assert_eq!(e.invocations(), 1);
    }

    #[test]
    fn engine_shares_programs_without_borrows() {
        let g = microbench::inner_product();
        let p = Arc::new(
            compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits"),
        );
        let mut a = CgraEngine::new(Arc::clone(&p));
        let mut b = CgraEngine::new(Arc::clone(&p));
        assert_eq!(a.infer(&[1; 16]), b.infer(&[1; 16]));
        assert!(Arc::ptr_eq(a.sim().program(), b.sim().program()), "one shared compilation");
    }
}
