//! Adapter: the CGRA simulator as the pipeline's inference engine.

use taurus_cgra::CgraSim;
use taurus_compiler::GridProgram;
use taurus_pisa::InferenceEngine;

/// Runs a compiled MapReduce program as the pipeline's ML block. The
/// engine reports the program's measured ingress-to-egress latency so
/// end-to-end packet latency accounting matches the ASIC analysis.
#[derive(Debug)]
pub struct CgraEngine<'p> {
    sim: CgraSim<'p>,
    latency_ns: u64,
    invocations: u64,
}

impl<'p> CgraEngine<'p> {
    /// Wraps a compiled program.
    pub fn new(program: &'p GridProgram) -> Self {
        Self {
            sim: CgraSim::new(program),
            latency_ns: program.timing.latency_ns.round() as u64,
            invocations: 0,
        }
    }

    /// Number of inferences executed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The underlying simulator (e.g., to inspect persistent state).
    pub fn sim(&self) -> &CgraSim<'p> {
        &self.sim
    }
}

impl InferenceEngine for CgraEngine<'_> {
    fn infer(&mut self, features: &[i32]) -> i64 {
        self.invocations += 1;
        let result = self.sim.process(features);
        // The model's first output lane is the verdict value (anomaly
        // score code, class index, …).
        i64::from(result.outputs.first().and_then(|o| o.first()).copied().unwrap_or(0))
    }

    fn latency_ns(&self) -> u64 {
        self.latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_compiler::{compile, CompileOptions, GridConfig};
    use taurus_ir::microbench;

    #[test]
    fn engine_reports_program_latency_and_output() {
        let g = microbench::inner_product();
        let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
        let mut e = CgraEngine::new(&p);
        let out = e.infer(&[1; 16]);
        // Weights are (i % 5) − 2 summed over 16 lanes with x = 1.
        let expect: i64 = (0..16).map(|i| (i % 5) - 2).sum();
        assert_eq!(out, expect);
        assert_eq!(e.latency_ns(), p.timing.latency_ns.round() as u64);
        assert_eq!(e.invocations(), 1);
    }
}
