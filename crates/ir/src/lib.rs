//! The MapReduce dataflow IR for per-packet ML (§3.3 of the paper).
//!
//! Taurus programs are nested parallel patterns — `Map` (element-wise
//! vector ops) and `Reduce` (associative vector-to-scalar ops) — plus
//! weight memories, lookup tables, and out-of-band state. The paper
//! expresses them in a P4 control block (Fig. 4); here the same programs
//! are built with a Rust builder whose structure mirrors that syntax, and
//! are represented as an explicit dataflow graph the compiler can split,
//! unroll, place, and route onto the CGRA grid.
//!
//! Value model: every edge carries a fixed-width vector of `i32` *lanes*.
//! Quantized int8 codes travel in lanes (range-restricted); reductions and
//! biases use the full `i32` accumulator range — exactly the datapath of
//! an 8-bit CU with wide accumulators. Operation semantics are defined
//! once, in [`interp`]; the CGRA simulator must match them bit-for-bit.
//!
//! - [`graph`]: nodes, weight banks, LUTs, state, and the [`graph::Graph`]
//!   container with validation.
//! - [`builder`]: the Fig.-4-shaped construction API.
//! - [`interp`]: the reference interpreter (golden model).
//! - [`kernels`]: the vectorizable fixed-point inner-loop kernels
//!   (chunked multi-accumulator MatVec/SqDist rows, pre-widened row
//!   groups) shared by the interpreter and the CGRA simulator.
//! - [`microbench`]: Table 6's microbenchmark programs (inner product,
//!   Conv1D, and the seven activation implementations).
//! - [`apps`]: the §3.3.2 non-ML applications (Count-Min Sketch, Elastic
//!   RSS) built from the same Map/Reduce primitives.

pub mod apps;
pub mod builder;
pub mod graph;
pub mod interp;
pub mod kernels;
pub mod microbench;

pub use builder::GraphBuilder;
pub use graph::{Graph, LutId, MapOp, Node, NodeId, Op, ReduceOp, StateId, WeightId};
pub use interp::{eval_map, eval_reduce, Interpreter};
pub use kernels::{matvec_row, sqdist_row};
