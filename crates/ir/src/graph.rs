//! Dataflow-graph representation of MapReduce programs.

use serde::{Deserialize, Serialize};
use taurus_fixed::quant::Requantizer;

/// Identifies a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a weight bank within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightId(pub u32);

/// Identifies a 256-entry lookup table within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LutId(pub u32);

/// Identifies a persistent state vector within a [`Graph`] (e.g. LSTM
/// hidden state, kept in MUs across packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateId(pub u32);

/// Element-wise (map) operations. Two-operand ops take the second operand
/// from another node or a constant vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapOp {
    /// Lane-wise wrapping addition.
    Add,
    /// Lane-wise wrapping subtraction.
    Sub,
    /// Lane-wise wrapping multiplication.
    Mul,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
    /// Arithmetic shift right by the second operand (clamped to 0..=31).
    Shr,
    /// Arithmetic shift left by the second operand (clamped to 0..=31).
    Shl,
}

/// Vector-to-scalar (reduce) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Sum of lanes (wrapping).
    Add,
    /// Minimum lane value.
    Min,
    /// Maximum lane value.
    Max,
    /// Index of the minimum lane (first on ties).
    ArgMin,
    /// Index of the maximum lane (first on ties).
    ArgMax,
}

/// The second operand of a two-input map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Another node's output (must have equal width, or width 1 for a
    /// broadcast scalar).
    Node(NodeId),
    /// A constant vector (width must match, or length 1 for broadcast).
    Const(Vec<i32>),
}

/// A dataflow operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// The packet's feature vector (int8 codes in lanes).
    Input {
        /// Number of features.
        width: usize,
    },
    /// A constant vector.
    Const {
        /// Lane values.
        values: Vec<i32>,
    },
    /// Element-wise operation.
    Map {
        /// The operation.
        op: MapOp,
        /// First operand.
        a: NodeId,
        /// Second operand (node or constant).
        b: Operand,
    },
    /// Reduction to a single lane.
    Reduce {
        /// The reduction.
        op: ReduceOp,
        /// Input vector.
        input: NodeId,
    },
    /// Fused per-row dot product against a weight bank with zero-point
    /// correction: `out[r] = Σ_j W[r,j]·(x[j] − zero_point)`.
    ///
    /// This is the paper's perceptron pattern (Fig. 3): a map of
    /// multiplications followed by an adder-tree reduce, replicated over
    /// the bank's rows (the outer map over neurons).
    MatVec {
        /// Weight bank (`rows × cols` int8).
        weights: WeightId,
        /// Input zero point.
        zero_point: i32,
        /// Input vector (width = bank cols).
        input: NodeId,
    },
    /// Per-row squared distance against a weight bank:
    /// `out[r] = Σ_j (x[j] − W[r,j])²` (KMeans/RBF pattern).
    SqDist {
        /// Weight bank holding the centroids/support vectors.
        weights: WeightId,
        /// Input vector (width = bank cols).
        input: NodeId,
    },
    /// Adds a constant `i32` bias vector.
    AddBias {
        /// Bias values (width must match input).
        bias: Vec<i32>,
        /// Input vector.
        input: NodeId,
    },
    /// Requantizes `i32` accumulators to int8 codes (clamped to
    /// `[-128, 127]`).
    Requant {
        /// The rescale parameters.
        requant: Requantizer,
        /// Input vector.
        input: NodeId,
    },
    /// 256-entry int8→int8 lookup; input lanes are clamped to code range
    /// before indexing.
    Lut {
        /// The table.
        lut: LutId,
        /// Input vector.
        input: NodeId,
    },
    /// Lane-wise `input > 0 ? 1 : 0`.
    GreaterZero {
        /// Input vector.
        input: NodeId,
    },
    /// Concatenates vectors in order.
    Concat {
        /// Inputs (at least one).
        inputs: Vec<NodeId>,
    },
    /// Extracts `len` lanes starting at `start`.
    Slice {
        /// Input vector.
        input: NodeId,
        /// First lane.
        start: usize,
        /// Number of lanes.
        len: usize,
    },
    /// Reads a persistent state vector (value from the previous packet).
    StateRead {
        /// The state.
        state: StateId,
    },
    /// Writes a persistent state vector (visible to the next packet);
    /// passes its input through unchanged.
    StateWrite {
        /// The state.
        state: StateId,
        /// New value (width must match the state).
        input: NodeId,
    },
}

/// A node: an [`Op`] plus its statically known output width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Output width in lanes.
    pub width: usize,
    /// Outer-loop iteration this node belongs to, if any. Nodes sharing a
    /// tag form one iteration body; the compiler may time-multiplex
    /// iterations onto fewer CUs (Table 7's unrolling axis).
    pub iter_tag: Option<u32>,
}

/// An int8 weight bank (stored in MUs on hardware).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightBank {
    /// Debug name.
    pub name: String,
    /// Row-major data.
    pub data: Vec<i8>,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl WeightBank {
    /// One row of the bank.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// A persistent state vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateBank {
    /// Debug name.
    pub name: String,
    /// Width in lanes.
    pub width: usize,
}

/// A complete MapReduce program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) weights: Vec<WeightBank>,
    pub(crate) luts: Vec<Vec<i8>>,
    pub(crate) states: Vec<StateBank>,
    pub(crate) outputs: Vec<NodeId>,
    /// Number of outer-loop iterations that can be unrolled (e.g. conv
    /// output positions). 1 means no outer loop.
    pub(crate) outer_iters: usize,
    /// Number of serial recurrence steps executed per packet (LSTM history
    /// windows). State feedback makes these inherently sequential, which
    /// is why Table 5's LSTM runs below line rate.
    pub(crate) sequence_steps: usize,
}

impl Graph {
    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Weight banks.
    pub fn weights(&self) -> &[WeightBank] {
        &self.weights
    }

    /// One weight bank.
    pub fn weight(&self, id: WeightId) -> &WeightBank {
        &self.weights[id.0 as usize]
    }

    /// Lookup tables (each 256 entries).
    pub fn luts(&self) -> &[Vec<i8>] {
        &self.luts
    }

    /// One lookup table.
    pub fn lut(&self, id: LutId) -> &[i8] {
        &self.luts[id.0 as usize]
    }

    /// Persistent states.
    pub fn states(&self) -> &[StateBank] {
        &self.states
    }

    /// Output nodes, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Declared outer-loop iteration count (Table 7's unrolling axis).
    pub fn outer_iters(&self) -> usize {
        self.outer_iters
    }

    /// Serial recurrence steps per packet (1 for feed-forward models).
    pub fn sequence_steps(&self) -> usize {
        self.sequence_steps
    }

    /// Total weight-bank bytes (int8 entries).
    pub fn weight_bytes(&self) -> usize {
        self.weights.iter().map(|w| w.data.len()).sum()
    }

    /// The input node's width.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no input (validated graphs always do).
    pub fn input_width(&self) -> usize {
        self.nodes
            .iter()
            .find_map(|n| match n.op {
                Op::Input { width } => Some(width),
                _ => None,
            })
            .expect("validated graph has an input")
    }

    /// Nodes in topological (= construction) order feeding each node's
    /// operands before it; construction order guarantees this because
    /// builders can only reference existing nodes.
    pub fn topo_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The operand node ids of a node.
    pub fn operands(&self, id: NodeId) -> Vec<NodeId> {
        match &self.node(id).op {
            Op::Input { .. } | Op::Const { .. } | Op::StateRead { .. } => vec![],
            Op::Map { a, b, .. } => {
                let mut v = vec![*a];
                if let Operand::Node(n) = b {
                    v.push(*n);
                }
                v
            }
            Op::Reduce { input, .. }
            | Op::MatVec { input, .. }
            | Op::SqDist { input, .. }
            | Op::AddBias { input, .. }
            | Op::Requant { input, .. }
            | Op::Lut { input, .. }
            | Op::GreaterZero { input }
            | Op::Slice { input, .. }
            | Op::StateWrite { input, .. } => vec![*input],
            Op::Concat { inputs } => inputs.clone(),
        }
    }

    /// Validates structural invariants: operand ordering, width
    /// consistency, and id ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n_inputs = self.nodes.iter().filter(|n| matches!(n.op, Op::Input { .. })).count();
        if n_inputs != 1 {
            return Err(format!("graph must have exactly one input node, has {n_inputs}"));
        }
        if self.outputs.is_empty() {
            return Err("graph has no outputs".into());
        }
        if self.outer_iters == 0 {
            return Err("outer_iters must be at least 1".into());
        }
        if self.sequence_steps == 0 {
            return Err("sequence_steps must be at least 1".into());
        }
        for lut in &self.luts {
            if lut.len() != 256 {
                return Err(format!("lut must have 256 entries, has {}", lut.len()));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for dep in self.operands(id) {
                if dep.0 as usize >= i {
                    return Err(format!("node {i} references later node {}", dep.0));
                }
            }
            let w = |nid: NodeId| self.nodes[nid.0 as usize].width;
            let want = node.width;
            let check = |cond: bool, msg: &str| -> Result<(), String> {
                if cond {
                    Ok(())
                } else {
                    Err(format!("node {i}: {msg}"))
                }
            };
            match &node.op {
                Op::Input { width } => {
                    check(want == *width, "width mismatch with declared size")?;
                }
                Op::Slice { input, start, len } => {
                    check(want == *len, "slice width = len")?;
                    check(start + len <= w(*input), "slice in bounds")?;
                }
                Op::Const { values } => check(want == values.len(), "const width")?,
                Op::Map { a, b, .. } => {
                    check(w(*a) == want, "map input width")?;
                    match b {
                        Operand::Node(n) => {
                            check(w(*n) == want || w(*n) == 1, "map operand width")?
                        }
                        Operand::Const(c) => {
                            check(c.len() == want || c.len() == 1, "map const width")?
                        }
                    }
                }
                Op::Reduce { .. } => check(want == 1, "reduce emits one lane")?,
                Op::MatVec { weights, input, .. } => {
                    let bank = &self.weights[weights.0 as usize];
                    check(w(*input) == bank.cols, "matvec input width = bank cols")?;
                    check(want == bank.rows, "matvec output width = bank rows")?;
                }
                Op::SqDist { weights, input } => {
                    let bank = &self.weights[weights.0 as usize];
                    check(w(*input) == bank.cols, "sqdist input width = bank cols")?;
                    check(want == bank.rows, "sqdist output width = bank rows")?;
                }
                Op::AddBias { bias, input } => {
                    check(w(*input) == want && bias.len() == want, "bias width")?;
                }
                Op::Requant { input, .. } | Op::Lut { input, .. } | Op::GreaterZero { input } => {
                    check(w(*input) == want, "unary width")?
                }
                Op::Concat { inputs } => {
                    let total: usize = inputs.iter().map(|&n| w(n)).sum();
                    check(total == want, "concat width = sum of inputs")?;
                }
                Op::StateRead { state } => {
                    check(self.states[state.0 as usize].width == want, "state width")?;
                }
                Op::StateWrite { state, input } => {
                    check(
                        self.states[state.0 as usize].width == w(*input) && want == w(*input),
                        "state write width",
                    )?;
                }
            }
        }
        Ok(())
    }
}
