//! Table 6's microbenchmarks as MapReduce programs.
//!
//! §5.1.3 decomposes data-plane models into reusable building blocks: two
//! linear kernels (a 16-element inner product and a Conv1D with eight
//! outputs and kernel size two) and seven activation implementations.
//! Each builder here returns a self-contained [`Graph`] that the compiler
//! maps onto the grid; the area/latency differences Table 6 reports fall
//! out of the op-chain lengths (exp-series ≫ piecewise ≫ ReLU/LUT).
//!
//! Numeric convention: activation benchmarks interpret lanes as Q4.4
//! fixed point (code 16 = 1.0) over the int8 range, matching an 8-bit
//! datapath with four fractional bits.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, MapOp, NodeId};

/// Number of lanes in a CU (paper's final configuration).
pub const LANES: usize = 16;

/// Q4.4 code for 1.0.
pub const Q44_ONE: i32 = 16;

/// All Table 6 microbenchmark names, in the paper's row order.
pub const ALL_MICROBENCHMARKS: [&str; 9] = [
    "Conv1D",
    "Inner Product",
    "ReLU",
    "LeakyReLU",
    "TanhExp",
    "SigmoidExp",
    "TanhPW",
    "SigmoidPW",
    "ActLUT",
];

/// Builds a microbenchmark by its Table 6 name.
///
/// # Panics
///
/// Panics on an unknown name (use [`ALL_MICROBENCHMARKS`]).
pub fn by_name(name: &str) -> Graph {
    match name {
        "Conv1D" => conv1d(),
        "Inner Product" => inner_product(),
        "ReLU" => relu(),
        "LeakyReLU" => leaky_relu(),
        "TanhExp" => tanh_exp(),
        "SigmoidExp" => sigmoid_exp(),
        "TanhPW" => tanh_pw(),
        "SigmoidPW" => sigmoid_pw(),
        "ActLUT" => act_lut(),
        other => panic!("unknown microbenchmark {other:?}"),
    }
}

/// 16-element inner product — "the core of perceptron neural networks,
/// LSTMs, and SVMs"; runs at line rate in a single CU.
pub fn inner_product() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let w = b.weights("w", 1, LANES, (0..LANES).map(|i| (i as i8 % 5) - 2).collect());
    let dot = b.map_reduce_rows(w, x, 0);
    b.output(dot);
    b.finish().expect("inner product is valid")
}

/// Conv1D with eight outputs and kernel dimension two. Maps poorly to
/// vectorized MapReduce (eight tiny reductions), hence the unroll story
/// of Table 7: `outer_iters = 8`.
pub fn conv1d() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(9);
    let w = b.weights("k", 1, 2, vec![3, -2]);
    let mut outs = Vec::new();
    for i in 0..8 {
        b.set_iteration(Some(i as u32));
        let window = b.slice(x, i, 2);
        let y = b.map_reduce_rows(w, window, 0);
        outs.push(y);
    }
    b.set_iteration(None);
    let cat = b.concat(outs);
    b.output(cat);
    b.outer_iters(8);
    b.finish().expect("conv1d is valid")
}

/// ReLU over 16 lanes: a single max-with-zero map.
pub fn relu() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let y = b.map_max_const(x, 0);
    b.output(y);
    b.finish().expect("relu is valid")
}

/// LeakyReLU (slope 1/8) over 16 lanes: shift + max, two maps.
///
/// For negative lanes `x >> 3 > x`, for positive `x > x >> 3`, so
/// `max(x, x >> 3)` is exactly leaky ReLU with a power-of-two slope.
pub fn leaky_relu() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let eighth = b.map_const(MapOp::Shr, x, vec![3]);
    let y = b.map(MapOp::Max, x, eighth);
    b.output(y);
    b.finish().expect("leaky relu is valid")
}

/// Shared exp-series sigmoid core on Q4.4 codes; returns the output node.
///
/// Implements `σ(x) = 1 / (1 + e^{−x})` with base-2 range reduction
/// (`e^{−t} = 2^{−1.44·t}`), a quadratic fractional-power approximation,
/// and two Newton–Raphson reciprocal iterations — the arithmetic shape
/// that makes the Exp variants 2–5× larger than piecewise ones (§5.1.3).
fn sigmoid_exp_core(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    // |x| and sign handling: σ(−x) = 1 − σ(x); compute on |x|.
    let neg = b.map_const(MapOp::Mul, x, vec![-1]);
    let ax = b.map(MapOp::Max, x, neg);
    let ax = b.map_const(MapOp::Min, ax, vec![7 * Q44_ONE]); // clamp to 7.0

    // u = 1.44·|x| in Q4.4: u = (ax·23) >> 4.
    let u_scaled = b.map_const(MapOp::Mul, ax, vec![23]);
    let u = b.map_const(MapOp::Shr, u_scaled, vec![4]);
    // Integer part k = u >> 4, fraction f = u − (k << 4).
    let k = b.map_const(MapOp::Shr, u, vec![4]);
    let k_shift = b.map_const(MapOp::Shl, k, vec![4]);
    let f = b.map(MapOp::Sub, u, k_shift);
    // 2^{−f/16} ≈ 1 − 0.693·(f/16) + 0.24·(f/16)² − 0.056·(f/16)³ in Q4.4:
    //   e ≈ 16 − ((f·177) >> 8) + ((f·f·61) >> 12) − ((f·f·f·57) >> 18)
    let t1_m = b.map_const(MapOp::Mul, f, vec![177]);
    let t1 = b.map_const(MapOp::Shr, t1_m, vec![8]);
    let f2 = b.map(MapOp::Mul, f, f);
    let t2_m = b.map_const(MapOp::Mul, f2, vec![61]);
    let t2 = b.map_const(MapOp::Shr, t2_m, vec![12]);
    let f3 = b.map(MapOp::Mul, f2, f);
    let t3_m = b.map_const(MapOp::Mul, f3, vec![57]);
    let t3 = b.map_const(MapOp::Shr, t3_m, vec![18]);
    let t1_neg = b.map_const(MapOp::Mul, t1, vec![-1]);
    let e_frac0 = b.map_const(MapOp::Add, t1_neg, vec![Q44_ONE]); // 1 − t1
    let e_frac1 = b.map(MapOp::Add, e_frac0, t2);
    let e_frac = b.map(MapOp::Sub, e_frac1, t3);
    // e^{−|x|} = e_frac >> k (per-lane variable shift).
    let e = b.map(MapOp::Shr, e_frac, k);

    // d = 1 + e in Q4.4; reciprocal r ≈ 1/d via Newton: r' = r·(2 − d·r).
    let d = b.map_const(MapOp::Add, e, vec![Q44_ONE]);
    // Initial guess: linear fit r0 ≈ 0.94 − (d − 1)/4 on d ∈ [1, 2].
    let d_off = b.map_const(MapOp::Sub, d, vec![Q44_ONE]);
    let corr = b.map_const(MapOp::Shr, d_off, vec![2]);
    let corr_neg = b.map_const(MapOp::Mul, corr, vec![-1]);
    let r0 = b.map_const(MapOp::Add, corr_neg, vec![15]);
    let newton = |b: &mut GraphBuilder, r: NodeId| {
        let dr_m = b.map(MapOp::Mul, d, r);
        let dr = b.map_const(MapOp::Shr, dr_m, vec![4]);
        let dr_neg = b.map_const(MapOp::Mul, dr, vec![-1]);
        let diff = b.map_const(MapOp::Add, dr_neg, vec![2 * Q44_ONE]); // 2 − d·r
        let rn_m = b.map(MapOp::Mul, r, diff);
        b.map_const(MapOp::Shr, rn_m, vec![4])
    };
    let r1 = newton(b, r0);
    let r1b = newton(b, r1);
    let r2 = newton(b, r1b);
    // σ(|x|) = r2 (numerator is 1.0); restore sign via
    // σ(x) = (1 − σ(|x|)) + (x > 0)·(2σ(|x|) − 1).
    let g = b.greater_zero(x);
    let r2_neg = b.map_const(MapOp::Mul, r2, vec![-1]);
    let flip = b.map_const(MapOp::Add, r2_neg, vec![Q44_ONE]); // 1 − σ
    let diff = b.map(MapOp::Sub, r2, flip); // 2σ − 1
    let g_diff_m = b.map(MapOp::Mul, g, diff);
    let pos_part = b.map(MapOp::Add, flip, g_diff_m);
    // Clamp to [0, 16].
    let lo = b.map_max_const(pos_part, 0);
    b.map_const(MapOp::Min, lo, vec![Q44_ONE])
}

/// Sigmoid via exponential series over 16 lanes (`SigmoidExp`).
pub fn sigmoid_exp() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let y = sigmoid_exp_core(&mut b, x);
    b.output(y);
    b.finish().expect("sigmoid exp is valid")
}

/// Tanh via the exponential series (`TanhExp`): `tanh(x) = 2σ(2x) − 1`.
pub fn tanh_exp() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let x2 = b.map_const(MapOp::Shl, x, vec![1]);
    let s = sigmoid_exp_core(&mut b, x2);
    let s2 = b.map_const(MapOp::Shl, s, vec![1]);
    let y = b.map_const(MapOp::Sub, s2, vec![Q44_ONE]);
    b.output(y);
    b.finish().expect("tanh exp is valid")
}

/// The shared piecewise-linear tanh core on Q4.4 codes: slope 1 to 0.5,
/// slope ½ to 0.75, then saturation at 1.0 — three segments from shifts
/// and min/max only.
fn tanh_pw_core(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let neg = b.map_const(MapOp::Mul, x, vec![-1]);
    let ax = b.map(MapOp::Max, x, neg);
    // Segment 1+2: y = min(ax,16) − max(min(ax,16) − 8, 0)/2.
    let m16 = b.map_const(MapOp::Min, ax, vec![Q44_ONE]);
    let over = b.map_const(MapOp::Sub, m16, vec![8]);
    let over_pos = b.map_max_const(over, 0);
    let knee = b.map_const(MapOp::Shr, over_pos, vec![1]);
    let y12 = b.map(MapOp::Sub, m16, knee);
    // Segment 3: + min(max(ax − 16, 0) >> 2, 4) caps at 16.
    let tail = b.map_const(MapOp::Sub, ax, vec![Q44_ONE]);
    let tail_pos = b.map_max_const(tail, 0);
    let tail_shr = b.map_const(MapOp::Shr, tail_pos, vec![2]);
    let tail_cap = b.map_const(MapOp::Min, tail_shr, vec![4]);
    let y_abs = b.map(MapOp::Add, y12, tail_cap);
    // Restore sign: y = (2·(x>0) − 1)·y_abs.
    let g = b.greater_zero(x);
    let g2 = b.map_const(MapOp::Shl, g, vec![1]);
    let sign = b.map_const(MapOp::Sub, g2, vec![1]);
    b.map(MapOp::Mul, y_abs, sign)
}

/// Piecewise-linear tanh (`TanhPW`).
pub fn tanh_pw() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let y = tanh_pw_core(&mut b, x);
    b.output(y);
    b.finish().expect("tanh pw is valid")
}

/// Piecewise-linear sigmoid (`SigmoidPW`) via the identity
/// `σ(x) = (tanh(x/2) + 1) / 2` over the [`tanh_pw`] core — slightly more
/// ops than `TanhPW`, matching Table 6's area ordering.
pub fn sigmoid_pw() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    let half = b.map_const(MapOp::Shr, x, vec![1]);
    let t = tanh_pw_core(&mut b, half);
    let t1 = b.map_const(MapOp::Add, t, vec![Q44_ONE]);
    let y = b.map_const(MapOp::Shr, t1, vec![1]);
    b.output(y);
    b.finish().expect("sigmoid pw is valid")
}

/// LUT-based activation (`ActLUT`): one table lookup per lane; the table
/// itself (1024×8 b in the paper; 256×8 b per int8 code here) lives in an
/// MU.
pub fn act_lut() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(LANES);
    // Table: tanh on Q4.4 codes.
    let table: Vec<i8> = (0..256)
        .map(|i| {
            let code = i - 128;
            let real = code as f32 / Q44_ONE as f32;
            (real.tanh() * Q44_ONE as f32).round().clamp(-128.0, 127.0) as i8
        })
        .collect();
    let lut = b.lut(table);
    let y = b.lookup(x, lut);
    b.output(y);
    b.finish().expect("act lut is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    fn run1(g: &Graph, x: i32) -> i32 {
        let w = g.input_width();
        let mut interp = Interpreter::new(g);
        interp.run_flat(&vec![x; w])[0]
    }

    #[test]
    fn all_names_build_valid_graphs() {
        for name in ALL_MICROBENCHMARKS {
            let g = by_name(name);
            assert!(g.validate().is_ok(), "{name}");
            assert!(!g.outputs().is_empty(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown microbenchmark")]
    fn unknown_name_panics() {
        let _ = by_name("Softmax3000");
    }

    #[test]
    fn inner_product_matches_manual_dot() {
        let g = inner_product();
        let mut interp = Interpreter::new(&g);
        let x: Vec<i32> = (0..16).map(|i| i + 1).collect();
        let w: Vec<i32> = (0..16).map(|i| (i % 5) - 2).collect();
        let expect: i32 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert_eq!(interp.run_flat(&x), vec![expect]);
    }

    #[test]
    fn conv1d_computes_sliding_dot() {
        let g = conv1d();
        let mut interp = Interpreter::new(&g);
        let x: Vec<i32> = (1..=9).collect();
        let out = interp.run_flat(&x);
        assert_eq!(out.len(), 8);
        for i in 0..8 {
            assert_eq!(out[i], 3 * x[i] - 2 * x[i + 1], "output {i}");
        }
        assert_eq!(g.outer_iters(), 8);
    }

    #[test]
    fn relu_and_leaky_relu_semantics() {
        assert_eq!(run1(&relu(), -5), 0);
        assert_eq!(run1(&relu(), 7), 7);
        assert_eq!(run1(&leaky_relu(), 64), 64);
        assert_eq!(run1(&leaky_relu(), -64), -8);
    }

    #[test]
    fn sigmoid_pw_is_bounded_and_centered() {
        let g = sigmoid_pw();
        for x in (-128..=127).step_by(3) {
            let y = run1(&g, x);
            assert!((0..=Q44_ONE).contains(&y), "x={x} y={y}");
        }
        assert_eq!(run1(&g, 0), 8, "σ(0) = 0.5");
        assert!(run1(&g, 127) >= 14);
        assert!(run1(&g, -128) <= 2);
    }

    #[test]
    fn tanh_pw_is_odd_and_saturating() {
        let g = tanh_pw();
        assert_eq!(run1(&g, 0), 0);
        for x in [4, 8, 16, 40, 100] {
            let y_pos = run1(&g, x);
            let y_neg = run1(&g, -x);
            assert_eq!(y_pos, -y_neg, "odd symmetry at {x}");
            assert!((0..=Q44_ONE).contains(&y_pos), "x={x} y={y_pos}");
        }
        assert_eq!(run1(&g, 100), Q44_ONE, "saturates at 1.0");
        // Slope-1 region: tanh(x) ≈ x for small x.
        assert_eq!(run1(&g, 4), 4);
    }

    #[test]
    fn sigmoid_exp_reasonable_shape() {
        let g = sigmoid_exp();
        let mid = run1(&g, 0);
        assert!((6..=10).contains(&mid), "σ(0) ≈ 0.5, got code {mid}");
        assert!(run1(&g, 96) >= 13, "σ(6) ≈ 1");
        assert!(run1(&g, -96) <= 3, "σ(−6) ≈ 0");
        // Monotone non-decreasing on a coarse sweep.
        let mut prev = i32::MIN;
        for x in (-96..=96).step_by(16) {
            let y = run1(&g, x);
            assert!(y + 2 >= prev, "roughly monotone at {x}: {y} vs {prev}");
            prev = y;
        }
    }

    #[test]
    fn tanh_exp_reasonable_shape() {
        let g = tanh_exp();
        let mid = run1(&g, 0);
        assert!(mid.abs() <= 3, "tanh(0) ≈ 0, got {mid}");
        assert!(run1(&g, 64) >= 10, "tanh(4) ≈ 1");
        assert!(run1(&g, -64) <= -10, "tanh(−4) ≈ −1");
    }

    #[test]
    fn act_lut_matches_real_tanh() {
        let g = act_lut();
        for x in [-64, -16, 0, 16, 64] {
            let y = run1(&g, x);
            let expect = ((x as f32 / 16.0).tanh() * 16.0).round() as i32;
            assert!((y - expect).abs() <= 1, "x={x} y={y} expect={expect}");
        }
    }

    #[test]
    fn exp_variants_are_bigger_than_pw_variants() {
        // The structural fact behind Table 6's area ordering.
        let exp_ops = sigmoid_exp().nodes().len();
        let pw_ops = sigmoid_pw().nodes().len();
        let relu_ops = relu().nodes().len();
        assert!(exp_ops > pw_ops, "{exp_ops} vs {pw_ops}");
        assert!(pw_ops > relu_ops);
    }
}
