//! Reference interpreter — the golden semantics of every IR operation.
//!
//! The CGRA simulator (`taurus-cgra`) must produce bit-identical outputs
//! to this interpreter for any valid graph; the cross-crate property
//! tests enforce it. All arithmetic is `i32` wrapping (hardware
//! accumulators), requantization uses [`Requantizer`] exactly as the ML
//! golden model does, and LUT inputs clamp to the int8 code range before
//! indexing.
//!
//! [`Requantizer`]: taurus_fixed::quant::Requantizer

use std::collections::HashMap;

use crate::graph::{Graph, MapOp, NodeId, Op, Operand, ReduceOp};
use crate::kernels::{matvec_row, sqdist_row};

/// Executes a [`Graph`] on successive feature vectors, carrying persistent
/// state across invocations (the per-packet model execution loop).
#[derive(Debug, Clone)]
pub struct Interpreter<'g> {
    graph: &'g Graph,
    state: Vec<Vec<i32>>,
}

impl<'g> Interpreter<'g> {
    /// Creates an interpreter with zero-initialized state.
    pub fn new(graph: &'g Graph) -> Self {
        let state = graph.states().iter().map(|s| vec![0i32; s.width]).collect();
        Self { graph, state }
    }

    /// Current persistent state (for inspection in tests).
    pub fn state(&self) -> &[Vec<i32>] {
        &self.state
    }

    /// Evaluates the graph for one input vector, returning the outputs in
    /// declaration order. Graphs with `sequence_steps > 1` execute the
    /// node set that many times with state feedback (the hardware's
    /// recurrence loop) and return the final step's outputs.
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the graph's input node.
    pub fn run(&mut self, input: &[i32]) -> Vec<Vec<i32>> {
        let steps = self.graph.sequence_steps();
        let mut out = self.run_step(input);
        for _ in 1..steps {
            out = self.run_step(input);
        }
        out
    }

    /// Evaluates exactly one recurrence step.
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the graph's input node.
    pub fn run_step(&mut self, input: &[i32]) -> Vec<Vec<i32>> {
        assert_eq!(input.len(), self.graph.input_width(), "input width mismatch");
        let mut values: HashMap<NodeId, Vec<i32>> =
            HashMap::with_capacity(self.graph.nodes().len());
        let mut pending_state: Vec<(usize, Vec<i32>)> = Vec::new();

        for id in self.graph.topo_order() {
            let node = self.graph.node(id);
            let get = |nid: &NodeId| -> &Vec<i32> { values.get(nid).expect("topological order") };
            let out: Vec<i32> = match &node.op {
                Op::Input { .. } => input.to_vec(),
                Op::Const { values } => values.clone(),
                Op::Map { op, a, b } => {
                    let av = get(a);
                    let make = |j: usize, bv: i32| eval_map(*op, av[j], bv);
                    match b {
                        Operand::Node(n) => {
                            let bv = get(n);
                            (0..av.len())
                                .map(|j| make(j, if bv.len() == 1 { bv[0] } else { bv[j] }))
                                .collect()
                        }
                        Operand::Const(c) => (0..av.len())
                            .map(|j| make(j, if c.len() == 1 { c[0] } else { c[j] }))
                            .collect(),
                    }
                }
                Op::Reduce { op, input } => vec![eval_reduce(*op, get(input))],
                Op::MatVec { weights, zero_point, input } => {
                    let bank = self.graph.weight(*weights);
                    let x = get(input);
                    (0..bank.rows).map(|r| matvec_row(bank.row(r), x, *zero_point)).collect()
                }
                Op::SqDist { weights, input } => {
                    let bank = self.graph.weight(*weights);
                    let x = get(input);
                    (0..bank.rows).map(|r| sqdist_row(bank.row(r), x)).collect()
                }
                Op::AddBias { bias, input } => {
                    get(input).iter().zip(bias).map(|(&v, &b)| v.wrapping_add(b)).collect()
                }
                Op::Requant { requant, input } => {
                    get(input).iter().map(|&v| i32::from(requant.apply(v))).collect()
                }
                Op::Lut { lut, input } => {
                    let table = self.graph.lut(*lut);
                    get(input)
                        .iter()
                        .map(|&v| {
                            let code = v.clamp(-128, 127);
                            i32::from(table[(code + 128) as usize])
                        })
                        .collect()
                }
                Op::GreaterZero { input } => get(input).iter().map(|&v| i32::from(v > 0)).collect(),
                Op::Concat { inputs } => inputs.iter().flat_map(|n| get(n).to_vec()).collect(),
                Op::Slice { input, start, len } => get(input)[*start..*start + *len].to_vec(),
                Op::StateRead { state } => self.state[state.0 as usize].clone(),
                Op::StateWrite { state, input } => {
                    let v = get(input).clone();
                    pending_state.push((state.0 as usize, v.clone()));
                    v
                }
            };
            debug_assert_eq!(out.len(), node.width, "node {id:?} produced wrong width");
            values.insert(id, out);
        }

        // State updates commit at end-of-packet, so all reads within one
        // invocation see the previous packet's values.
        for (idx, v) in pending_state {
            self.state[idx] = v;
        }

        self.graph
            .outputs()
            .iter()
            .map(|id| values.get(id).expect("outputs computed").clone())
            .collect()
    }

    /// Convenience: run and flatten all outputs into one vector.
    pub fn run_flat(&mut self, input: &[i32]) -> Vec<i32> {
        self.run(input).into_iter().flatten().collect()
    }
}

/// Lane-wise map semantics (wrapping `i32`). Exported for the CGRA
/// simulator.
pub fn eval_map(op: MapOp, a: i32, b: i32) -> i32 {
    match op {
        MapOp::Add => a.wrapping_add(b),
        MapOp::Sub => a.wrapping_sub(b),
        MapOp::Mul => a.wrapping_mul(b),
        MapOp::Min => a.min(b),
        MapOp::Max => a.max(b),
        MapOp::Shr => a >> b.clamp(0, 31),
        MapOp::Shl => a.wrapping_shl(b.clamp(0, 31) as u32),
    }
}

/// Reduction semantics (wrapping `i32` add; first-on-ties argmin/argmax).
/// Exported for the CGRA simulator.
pub fn eval_reduce(op: ReduceOp, v: &[i32]) -> i32 {
    match op {
        ReduceOp::Add => v.iter().fold(0i32, |a, &b| a.wrapping_add(b)),
        ReduceOp::Min => v.iter().copied().min().unwrap_or(0),
        ReduceOp::Max => v.iter().copied().max().unwrap_or(0),
        ReduceOp::ArgMin => {
            let mut best = 0usize;
            for (i, &x) in v.iter().enumerate() {
                if x < v[best] {
                    best = i;
                }
            }
            best as i32
        }
        ReduceOp::ArgMax => {
            let mut best = 0usize;
            for (i, &x) in v.iter().enumerate() {
                if x > v[best] {
                    best = i;
                }
            }
            best as i32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{MapOp, ReduceOp};

    #[test]
    fn perceptron_dot_product() {
        let mut b = GraphBuilder::new();
        let x = b.input(4);
        let w = b.weights("w", 1, 4, vec![1, 2, 3, 4]);
        let dot = b.map_reduce_rows(w, x, 0);
        b.output(dot);
        let g = b.finish().expect("valid");
        let mut interp = Interpreter::new(&g);
        // 1·1 + 2·2 + 3·3 + 4·4 = 30.
        assert_eq!(interp.run_flat(&[1, 2, 3, 4]), vec![30]);
    }

    #[test]
    fn matvec_zero_point_correction() {
        let mut b = GraphBuilder::new();
        let x = b.input(2);
        let w = b.weights("w", 1, 2, vec![3, -3]);
        let dot = b.map_reduce_rows(w, x, 10);
        b.output(dot);
        let g = b.finish().expect("valid");
        // 3·(12−10) + (−3)·(8−10) = 6 + 6 = 12.
        assert_eq!(Interpreter::new(&g).run_flat(&[12, 8]), vec![12]);
    }

    #[test]
    fn sq_dist_rows() {
        let mut b = GraphBuilder::new();
        let x = b.input(2);
        let w = b.weights("c", 2, 2, vec![0, 0, 3, 4]);
        let d = b.sq_dist_rows(w, x);
        let nearest = b.reduce(ReduceOp::ArgMin, d);
        b.output(nearest);
        let g = b.finish().expect("valid");
        assert_eq!(Interpreter::new(&g).run_flat(&[3, 4]), vec![1]);
        assert_eq!(Interpreter::new(&g).run_flat(&[0, 1]), vec![0]);
    }

    #[test]
    fn map_ops_semantics() {
        for (op, a, bv, expect) in [
            (MapOp::Add, 3, 4, 7),
            (MapOp::Sub, 3, 4, -1),
            (MapOp::Mul, -3, 4, -12),
            (MapOp::Min, 3, 4, 3),
            (MapOp::Max, 3, 4, 4),
            (MapOp::Shr, -8, 2, -2),
            (MapOp::Shl, 3, 2, 12),
        ] {
            assert_eq!(eval_map(op, a, bv), expect, "{op:?}");
        }
        // Wrapping, not saturating.
        assert_eq!(eval_map(MapOp::Add, i32::MAX, 1), i32::MIN);
    }

    #[test]
    fn reduce_ops_semantics() {
        let v = [5, -2, 9, -2];
        assert_eq!(eval_reduce(ReduceOp::Add, &v), 10);
        assert_eq!(eval_reduce(ReduceOp::Min, &v), -2);
        assert_eq!(eval_reduce(ReduceOp::Max, &v), 9);
        assert_eq!(eval_reduce(ReduceOp::ArgMin, &v), 1, "first on ties");
        assert_eq!(eval_reduce(ReduceOp::ArgMax, &v), 2);
    }

    #[test]
    fn lut_clamps_out_of_range_codes() {
        let mut b = GraphBuilder::new();
        let x = b.input(1);
        let table: Vec<i8> = (0..256).map(|i| (i - 128).clamp(-128, 127) as i8).collect();
        let lut = b.lut(table);
        let y = b.lookup(x, lut);
        b.output(y);
        let g = b.finish().expect("valid");
        let mut interp = Interpreter::new(&g);
        assert_eq!(interp.run_flat(&[1_000]), vec![127]);
        assert_eq!(interp.run_flat(&[-1_000]), vec![-128]);
        assert_eq!(interp.run_flat(&[5]), vec![5]);
    }

    #[test]
    fn state_sees_previous_packet() {
        let mut b = GraphBuilder::new();
        let x = b.input(1);
        let h = b.state("h", 1);
        let prev = b.state_read(h);
        let sum = b.map(MapOp::Add, x, prev);
        let wr = b.state_write(h, sum);
        b.output(wr);
        let g = b.finish().expect("valid");
        let mut interp = Interpreter::new(&g);
        assert_eq!(interp.run_flat(&[1]), vec![1]);
        assert_eq!(interp.run_flat(&[1]), vec![2]);
        assert_eq!(interp.run_flat(&[10]), vec![12]);
    }

    #[test]
    fn broadcast_scalar_operand() {
        let mut b = GraphBuilder::new();
        let x = b.input(3);
        let s = b.reduce(ReduceOp::Max, x);
        let centered = b.map(MapOp::Sub, x, s);
        b.output(centered);
        let g = b.finish().expect("valid");
        assert_eq!(Interpreter::new(&g).run_flat(&[1, 5, 3]), vec![-4, 0, -2]);
    }

    #[test]
    fn greater_zero_and_concat_slice() {
        let mut b = GraphBuilder::new();
        let x = b.input(3);
        let gz = b.greater_zero(x);
        let cat = b.concat(vec![gz, x]);
        let s = b.slice(cat, 1, 3);
        b.output(s);
        let g = b.finish().expect("valid");
        assert_eq!(Interpreter::new(&g).run_flat(&[-5, 7, 0]), vec![1, 0, -5]);
    }
}
