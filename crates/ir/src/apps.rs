//! Broader application support beyond ML (§3.3.2, Fig. 5).
//!
//! The paper's MapReduce abstraction is deliberately wider than neural
//! networks: "map evaluates cores' suitability, and reduce selects the
//! closest core" (Elastic RSS), and "MapReduce can also support
//! sketching algorithms, including Count-Min-Sketches for flow-size
//! estimation". This module builds those two applications as MapReduce
//! programs, exercising the IR's state, hashing-by-arithmetic, and
//! reduction features on non-ML workloads.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, MapOp, NodeId, ReduceOp};

/// Multiplicative hash over lanes: `h_i = ((x · a_i) >> shift) mod width`
/// built from Map ops only — the form a CU computes in two stages.
fn lane_hash(
    b: &mut GraphBuilder,
    x: NodeId,
    multipliers: Vec<i32>,
    shift: i32,
    modulus: i32,
) -> NodeId {
    let m = b.map_const(MapOp::Mul, x, multipliers);
    let s = b.map_const(MapOp::Shr, m, vec![shift]);
    // Power-of-two modulus via mask (And is expressible as min/max pairs
    // on non-negative values; use shift trick: v & (mod-1) for mod = 2^k).
    debug_assert!(modulus.count_ones() == 1, "modulus must be a power of two");
    let k = modulus.trailing_zeros() as i32;
    let hi = b.map_const(MapOp::Shr, s, vec![k]);
    let hi_shifted = b.map_const(MapOp::Shl, hi, vec![k]);
    b.map(MapOp::Sub, s, hi_shifted)
}

/// Count-Min Sketch update + query in one pass (`d` hash rows of width
/// `w`, both powers of two ≤ 16 lanes).
///
/// Input: a single lane carrying the flow key (a small int code).
/// Output: the flow's estimated count = min over rows of the *updated*
/// counters — the classic conservative CMS read-after-increment.
///
/// The sketch rows live in persistent state: `d` vectors of `w` lanes,
/// exactly how MU-resident counters would be laid out.
///
/// # Panics
///
/// Panics if `w` is not a power of two or exceeds 16, or `d` is 0.
pub fn count_min_sketch(d: usize, w: usize) -> Graph {
    assert!(w.is_power_of_two() && w <= 16, "row width must be a power of two ≤ 16");
    assert!(d > 0 && d <= 4, "1–4 hash rows");
    let mut b = GraphBuilder::new();
    let key = b.input(1);

    // Odd multipliers per row (Knuth-style multiplicative hashing).
    let mults = [0x9E37i32, 0x85EB, 0xC2B3, 0x27D5];
    let mut estimates = Vec::with_capacity(d);
    for (row, &mult) in mults.iter().enumerate().take(d) {
        let idx = lane_hash(&mut b, key, vec![mult], 7, w as i32);
        // One-hot over the row: onehot_j = max(0, 1 − |j − idx|) computed
        // with map ops; the lane-index constant vector gives the width,
        // and the scalar `idx` broadcasts across it.
        let lane_ids = b.constant((0..w as i32).collect());
        let diff = b.map(MapOp::Sub, lane_ids, idx);
        // |diff| = max(diff, −diff).
        let neg = b.map_const(MapOp::Mul, diff, vec![-1]);
        let absd = b.map(MapOp::Max, diff, neg);
        // onehot = max(0, 1 − |diff|): 1 at the hashed lane, 0 elsewhere.
        let inv = b.map_const(MapOp::Mul, absd, vec![-1]);
        let one_minus = b.map_const(MapOp::Add, inv, vec![1]);
        let onehot = b.map_max_const(one_minus, 0);

        // counters' += onehot; estimate = Σ (counters'·onehot).
        let counters = b.state(format!("cms_row{row}"), w);
        let prev = b.state_read(counters);
        let updated = b.map(MapOp::Add, prev, onehot);
        let written = b.state_write(counters, updated);
        let masked = b.map(MapOp::Mul, written, onehot);
        let est = b.reduce(ReduceOp::Add, masked);
        estimates.push(est);
    }
    let all = b.concat(estimates);
    let min_est = b.reduce(ReduceOp::Min, all);
    b.output(min_est);
    b.finish().expect("cms is structurally valid")
}

/// Elastic RSS (Rucker et al., the paper's [134]): map scores every core
/// by load-adjusted hash affinity, reduce selects the best core.
///
/// Input: `[flow_key, load_0 … load_{n−1}]` (current per-core loads as
/// small codes). Output: the selected core index.
///
/// # Panics
///
/// Panics if `cores` is 0 or exceeds 15.
pub fn elastic_rss(cores: usize) -> Graph {
    assert!(cores > 0 && cores <= 15, "1–15 cores");
    let mut b = GraphBuilder::new();
    let input = b.input(1 + cores);
    let key = b.slice(input, 0, 1);
    let loads = b.slice(input, 1, cores);

    // Per-core affinity: hash(key, core) in [0, 64) via per-lane odd
    // multipliers, then subtract load × weight — a loaded core loses
    // affinity (the eRSS "suitability" function). Broadcast the key over
    // a width-`cores` lane vector first.
    let zeros = b.constant(vec![0; cores]);
    let key_lanes = b.map(MapOp::Add, zeros, key);
    let mults: Vec<i32> = (0..cores as i32).map(|c| 0x9E37 + 2 * c * 0x85).collect();
    let h = lane_hash(&mut b, key_lanes, mults, 5, 64);
    let load_penalty = b.map_const(MapOp::Mul, loads, vec![8]);
    let suitability = b.map(MapOp::Sub, h, load_penalty);
    let best = b.reduce(ReduceOp::ArgMax, suitability);
    b.output(best);
    b.finish().expect("erss is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    #[test]
    fn cms_counts_repeated_keys() {
        let g = count_min_sketch(3, 16);
        let mut interp = Interpreter::new(&g);
        // Insert key 42 five times: estimates must be 1..=5.
        for expect in 1..=5 {
            let est = interp.run_flat(&[42])[0];
            assert_eq!(est, expect, "after {expect} inserts");
        }
        // A different key starts near zero (bounded by collisions).
        let other = interp.run_flat(&[7])[0];
        assert!(other <= 6, "other-key estimate {other} bounded by CMS error");
    }

    #[test]
    fn cms_never_undercounts() {
        let g = count_min_sketch(2, 8);
        let mut interp = Interpreter::new(&g);
        let keys = [1, 5, 9, 1, 5, 1, 3, 3, 1];
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            *truth.entry(k).or_insert(0i32) += 1;
            let est = interp.run_flat(&[k])[0];
            assert!(est >= truth[&k], "key {k}: est {est} < true {}", truth[&k]);
        }
    }

    #[test]
    fn erss_prefers_unloaded_cores() {
        let g = elastic_rss(4);
        let mut interp = Interpreter::new(&g);
        // With one core heavily loaded, it should rarely win.
        let mut loaded_wins = 0;
        for key in 0..64 {
            let mut input = vec![key, 0, 0, 0, 0];
            input[1] = 15; // core 0 heavily loaded
            let core = interp.run_flat(&input)[0];
            if core == 0 {
                loaded_wins += 1;
            }
        }
        assert!(loaded_wins < 8, "loaded core won {loaded_wins}/64");
    }

    #[test]
    fn erss_is_deterministic_per_flow() {
        let g = elastic_rss(4);
        let mut interp = Interpreter::new(&g);
        let a = interp.run_flat(&[17, 1, 2, 1, 3])[0];
        let b2 = interp.run_flat(&[17, 1, 2, 1, 3])[0];
        assert_eq!(a, b2, "same flow, same loads → same core");
    }

    #[test]
    fn both_apps_compile_shapes_validate() {
        assert!(count_min_sketch(4, 16).validate().is_ok());
        assert!(elastic_rss(8).validate().is_ok());
    }
}
