//! Vectorizable fixed-point inner-loop kernels.
//!
//! These are the MapReduce block's arithmetic workhorses: the per-row
//! dot product behind [`crate::graph::Op::MatVec`] and the per-row
//! squared distance behind [`crate::graph::Op::SqDist`]. The paper's
//! CGRA executes them as wide SIMD lanes (§5.1.3's compute grid); the
//! software model gets the same effect by writing them as chunked loops
//! over independent wrapping accumulators that the compiler
//! autovectorizes.
//!
//! # Why reassociation is bit-exact
//!
//! All accumulation is wrapping `i32` arithmetic — addition modulo 2³²,
//! which is associative and commutative — so splitting the sum across
//! `LANES` independent accumulators and folding them at the end
//! produces *bit-identical* results to the sequential fold for every
//! input, including deliberate overflow. The scalar references
//! ([`matvec_row_scalar`], [`sqdist_row_scalar`]) are kept as the
//! executable semantics; `tests/prop_kernels.rs` pins the vectorized
//! forms against them over adversarial lengths and operands.
//!
//! Two layouts are served:
//!
//! - **int8 banks** ([`matvec_row`], [`sqdist_row`]): weights as stored
//!   in MUs; each element is widened in-loop.
//! - **pre-widened row groups** ([`matvec_rows_wide`],
//!   [`sqdist_rows_wide`]): row-contiguous `i32` weights prepared once
//!   at plan-compile time (the CGRA simulator's `ExecPlan` does this),
//!   processed `ROW_BLOCK` rows at a time so the `x − zero_point`
//!   widening is shared across rows — the layout that pays for the
//!   paper's small dense layers (the AD DNN's rows are only 3–12 lanes
//!   wide, too narrow for lane-chunking alone to help).

/// Accumulator lanes in the chunked single-row kernels.
pub const LANES: usize = 8;

/// Rows processed together by the widened row-group kernels.
pub const ROW_BLOCK: usize = 4;

/// Scalar reference for [`matvec_row`]: the sequential fold that
/// defines the semantics (`Σ_j W[r,j]·(x[j] − zero_point)`, wrapping).
#[inline]
pub fn matvec_row_scalar(row: &[i8], x: &[i32], zero_point: i32) -> i32 {
    row.iter().zip(x).fold(0i32, |acc, (&w, &xv)| {
        acc.wrapping_add(i32::from(w).wrapping_mul(xv.wrapping_sub(zero_point)))
    })
}

/// Scalar reference for [`sqdist_row`] (`Σ_j (x[j] − W[r,j])²`,
/// wrapping).
#[inline]
pub fn sqdist_row_scalar(row: &[i8], x: &[i32]) -> i32 {
    row.iter().zip(x).fold(0i32, |acc, (&w, &xv)| {
        let d = xv.wrapping_sub(i32::from(w));
        acc.wrapping_add(d.wrapping_mul(d))
    })
}

/// One MatVec row over an int8 bank row: chunked over [`LANES`]
/// independent accumulators, bit-exact with [`matvec_row_scalar`].
/// Like the scalar fold, the sum runs over `min(row.len(), x.len())`
/// elements.
#[inline]
pub fn matvec_row(row: &[i8], x: &[i32], zero_point: i32) -> i32 {
    let n = row.len().min(x.len());
    let (row, x) = (&row[..n], &x[..n]);
    let mut acc = [0i32; LANES];
    let mut rows = row.chunks_exact(LANES);
    let mut xs = x.chunks_exact(LANES);
    for (rw, xw) in (&mut rows).zip(&mut xs) {
        for l in 0..LANES {
            acc[l] =
                acc[l].wrapping_add(i32::from(rw[l]).wrapping_mul(xw[l].wrapping_sub(zero_point)));
        }
    }
    let mut total = rows.remainder().iter().zip(xs.remainder()).fold(0i32, |t, (&w, &xv)| {
        t.wrapping_add(i32::from(w).wrapping_mul(xv.wrapping_sub(zero_point)))
    });
    for a in acc {
        total = total.wrapping_add(a);
    }
    total
}

/// One SqDist row over an int8 bank row: chunked over [`LANES`]
/// independent accumulators, bit-exact with [`sqdist_row_scalar`].
#[inline]
pub fn sqdist_row(row: &[i8], x: &[i32]) -> i32 {
    let n = row.len().min(x.len());
    let (row, x) = (&row[..n], &x[..n]);
    let mut acc = [0i32; LANES];
    let mut rows = row.chunks_exact(LANES);
    let mut xs = x.chunks_exact(LANES);
    for (rw, xw) in (&mut rows).zip(&mut xs) {
        for l in 0..LANES {
            let d = xw[l].wrapping_sub(i32::from(rw[l]));
            acc[l] = acc[l].wrapping_add(d.wrapping_mul(d));
        }
    }
    let mut total = rows.remainder().iter().zip(xs.remainder()).fold(0i32, |t, (&w, &xv)| {
        let d = xv.wrapping_sub(i32::from(w));
        t.wrapping_add(d.wrapping_mul(d))
    });
    for a in acc {
        total = total.wrapping_add(a);
    }
    total
}

/// MatVec over a pre-widened, row-contiguous weight group:
/// `out[i] = Σ_j data[i·cols + j]·(x[j] − zero_point)` for
/// `i < out.len()`, processed [`ROW_BLOCK`] rows at a time so the
/// widened `x[j] − zero_point` is computed once per column and shared
/// across the block's rows. Bit-exact with a per-row
/// [`matvec_row_scalar`] on the corresponding int8 rows.
///
/// # Panics
///
/// Panics if `data.len() < out.len() * cols` or `x.len() < cols`.
pub fn matvec_rows_wide(data: &[i32], cols: usize, x: &[i32], zero_point: i32, out: &mut [i32]) {
    assert!(data.len() >= out.len() * cols, "widened bank too small");
    if cols == 0 {
        out.fill(0);
        return;
    }
    let data = &data[..out.len() * cols];
    let x = &x[..cols];
    let mut rows = data.chunks_exact(cols * ROW_BLOCK);
    let mut outs = out.chunks_exact_mut(ROW_BLOCK);
    for (block, ob) in (&mut rows).zip(&mut outs) {
        let mut acc = [0i32; ROW_BLOCK];
        for (j, &xv) in x.iter().enumerate() {
            let xz = xv.wrapping_sub(zero_point);
            for r in 0..ROW_BLOCK {
                acc[r] = acc[r].wrapping_add(block[r * cols + j].wrapping_mul(xz));
            }
        }
        ob.copy_from_slice(&acc);
    }
    for (row, o) in rows.remainder().chunks_exact(cols).zip(outs.into_remainder()) {
        *o = row
            .iter()
            .zip(x)
            .fold(0i32, |t, (&w, &xv)| t.wrapping_add(w.wrapping_mul(xv.wrapping_sub(zero_point))));
    }
}

/// SqDist over a pre-widened, row-contiguous weight group:
/// `out[i] = Σ_j (x[j] − data[i·cols + j])²`, blocked like
/// [`matvec_rows_wide`]. Bit-exact with per-row [`sqdist_row_scalar`].
///
/// # Panics
///
/// Panics if `data.len() < out.len() * cols` or `x.len() < cols`.
pub fn sqdist_rows_wide(data: &[i32], cols: usize, x: &[i32], out: &mut [i32]) {
    assert!(data.len() >= out.len() * cols, "widened bank too small");
    if cols == 0 {
        out.fill(0);
        return;
    }
    let data = &data[..out.len() * cols];
    let x = &x[..cols];
    let mut rows = data.chunks_exact(cols * ROW_BLOCK);
    let mut outs = out.chunks_exact_mut(ROW_BLOCK);
    for (block, ob) in (&mut rows).zip(&mut outs) {
        let mut acc = [0i32; ROW_BLOCK];
        for (j, &xv) in x.iter().enumerate() {
            for r in 0..ROW_BLOCK {
                let d = xv.wrapping_sub(block[r * cols + j]);
                acc[r] = acc[r].wrapping_add(d.wrapping_mul(d));
            }
        }
        ob.copy_from_slice(&acc);
    }
    for (row, o) in rows.remainder().chunks_exact(cols).zip(outs.into_remainder()) {
        *o = row.iter().zip(x).fold(0i32, |t, (&w, &xv)| {
            let d = xv.wrapping_sub(w);
            t.wrapping_add(d.wrapping_mul(d))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_scalar_on_non_lane_widths() {
        for n in 0..=37 {
            let row: Vec<i8> = (0..n).map(|i| (i as i8).wrapping_mul(37).wrapping_sub(5)).collect();
            let x: Vec<i32> = (0..n).map(|i| i * 1_000_003 - 77).collect();
            for zp in [-3, 0, 11] {
                assert_eq!(matvec_row(&row, &x, zp), matvec_row_scalar(&row, &x, zp), "n={n}");
            }
        }
    }

    #[test]
    fn sqdist_matches_scalar_on_non_lane_widths() {
        for n in 0..=37 {
            let row: Vec<i8> = (0..n).map(|i| (i as i8).wrapping_mul(91).wrapping_add(3)).collect();
            let x: Vec<i32> = (0..n).map(|i| i * 65_537 - 9).collect();
            assert_eq!(sqdist_row(&row, &x), sqdist_row_scalar(&row, &x), "n={n}");
        }
    }

    #[test]
    fn kernels_wrap_instead_of_saturating() {
        // Operands chosen so partial products overflow i32 many times.
        let row = vec![i8::MIN; 19];
        let x = vec![i32::MAX; 19];
        assert_eq!(matvec_row(&row, &x, -5), matvec_row_scalar(&row, &x, -5));
        assert_eq!(sqdist_row(&row, &x), sqdist_row_scalar(&row, &x));
    }

    #[test]
    fn empty_rows_sum_to_zero() {
        assert_eq!(matvec_row(&[], &[], 7), 0);
        assert_eq!(sqdist_row(&[], &[]), 0);
        matvec_rows_wide(&[], 0, &[], 7, &mut []);
    }

    #[test]
    fn widened_group_matches_per_row_scalar() {
        for (rows, cols) in [(1usize, 1usize), (3, 6), (4, 6), (5, 3), (12, 6), (7, 16), (9, 2)] {
            let bank: Vec<i8> =
                (0..rows * cols).map(|i| (i as i8).wrapping_mul(53).wrapping_sub(17)).collect();
            let wide: Vec<i32> = bank.iter().map(|&w| i32::from(w)).collect();
            let x: Vec<i32> = (0..cols).map(|j| (j as i32) * 999_983 - 123).collect();
            for zp in [-7, 0, 4] {
                let mut out = vec![0i32; rows];
                matvec_rows_wide(&wide, cols, &x, zp, &mut out);
                for r in 0..rows {
                    let want = matvec_row_scalar(&bank[r * cols..(r + 1) * cols], &x, zp);
                    assert_eq!(out[r], want, "rows={rows} cols={cols} r={r} zp={zp}");
                }
            }
            let mut out = vec![0i32; rows];
            sqdist_rows_wide(&wide, cols, &x, &mut out);
            for r in 0..rows {
                let want = sqdist_row_scalar(&bank[r * cols..(r + 1) * cols], &x);
                assert_eq!(out[r], want, "sqdist rows={rows} cols={cols} r={r}");
            }
        }
    }
}
