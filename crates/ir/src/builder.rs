//! Construction API mirroring the paper's P4 `MapReduce` control block.
//!
//! Fig. 4 of the paper writes a DNN layer as
//!
//! ```p4
//! LinearResults = Map(rows) { i =>
//!   Mult = Map(cols) { j => Weights[i,j] * FeatureSet[j] }
//!   Reduce(Mult) { (x,y) => x + y } }
//! Output = Map(rows) { k => ReLU(LinearResults[k]) }
//! ```
//!
//! [`GraphBuilder`] exposes the same vocabulary: [`GraphBuilder::map`] and
//! [`GraphBuilder::reduce`] for the raw patterns, and
//! [`GraphBuilder::map_reduce_rows`] for the fused outer-map-over-neurons
//! form (`MatVec`), which is how the frontends emit dense layers.

use taurus_fixed::quant::Requantizer;

use crate::graph::{
    Graph, LutId, MapOp, Node, NodeId, Op, Operand, ReduceOp, StateBank, StateId, WeightBank,
    WeightId,
};

/// Incrementally builds a [`Graph`].
///
/// # Examples
///
/// A 16-input perceptron with ReLU, as in Fig. 3 of the paper:
///
/// ```
/// use taurus_ir::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// let x = b.input(16);
/// let w = b.weights("w", 1, 16, vec![1i8; 16]);
/// let dot = b.map_reduce_rows(w, x, 0);       // map ×, reduce +
/// let relu = b.map_max_const(dot, 0);         // map ReLU
/// b.output(relu);
/// let g = b.finish().expect("valid graph");
/// assert_eq!(g.outputs().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    weights: Vec<WeightBank>,
    luts: Vec<Vec<i8>>,
    states: Vec<StateBank>,
    outputs: Vec<NodeId>,
    outer_iters: usize,
    sequence_steps: usize,
    current_iter: Option<u32>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self { outer_iters: 1, sequence_steps: 1, ..Self::default() }
    }

    fn push(&mut self, op: Op, width: usize) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, width, iter_tag: self.current_iter });
        id
    }

    /// Tags subsequently built nodes as belonging to outer-loop iteration
    /// `k` (see [`Graph`]'s `outer_iters`); `None` clears the tag.
    pub fn set_iteration(&mut self, k: Option<u32>) {
        self.current_iter = k;
    }

    /// Width of an already-built node.
    pub fn width(&self, id: NodeId) -> usize {
        self.nodes[id.0 as usize].width
    }

    /// Declares the packet feature input (exactly one per graph).
    pub fn input(&mut self, width: usize) -> NodeId {
        self.push(Op::Input { width }, width)
    }

    /// Adds a constant vector.
    pub fn constant(&mut self, values: Vec<i32>) -> NodeId {
        let w = values.len();
        self.push(Op::Const { values }, w)
    }

    /// Registers an int8 weight bank.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn weights(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        data: Vec<i8>,
    ) -> WeightId {
        assert_eq!(data.len(), rows * cols, "weight bank shape mismatch");
        let id = WeightId(self.weights.len() as u32);
        self.weights.push(WeightBank { name: name.into(), data, rows, cols });
        id
    }

    /// Registers a 256-entry lookup table.
    ///
    /// # Panics
    ///
    /// Panics if `table.len() != 256`.
    pub fn lut(&mut self, table: Vec<i8>) -> LutId {
        assert_eq!(table.len(), 256, "luts have 256 entries");
        let id = LutId(self.luts.len() as u32);
        self.luts.push(table);
        id
    }

    /// Registers a persistent state vector (zero-initialized).
    pub fn state(&mut self, name: impl Into<String>, width: usize) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(StateBank { name: name.into(), width });
        id
    }

    /// `Map(op)` over two node operands.
    pub fn map(&mut self, op: MapOp, a: NodeId, b: NodeId) -> NodeId {
        let w = self.width(a);
        self.push(Op::Map { op, a, b: Operand::Node(b) }, w)
    }

    /// `Map(op)` with a constant second operand (broadcast if length 1).
    pub fn map_const(&mut self, op: MapOp, a: NodeId, c: Vec<i32>) -> NodeId {
        let w = self.width(a);
        self.push(Op::Map { op, a, b: Operand::Const(c) }, w)
    }

    /// Lane-wise max against a broadcast scalar (ReLU when `c` is the zero
    /// code).
    pub fn map_max_const(&mut self, a: NodeId, c: i32) -> NodeId {
        self.map_const(MapOp::Max, a, vec![c])
    }

    /// `Reduce(op)` to a single lane.
    pub fn reduce(&mut self, op: ReduceOp, input: NodeId) -> NodeId {
        self.push(Op::Reduce { op, input }, 1)
    }

    /// The fused perceptron pattern: for each weight-bank row, map a
    /// lane-wise multiply then reduce with add — the inner Map/Reduce pair
    /// of Fig. 4 replicated over rows (the outer map).
    pub fn map_reduce_rows(&mut self, weights: WeightId, input: NodeId, zero_point: i32) -> NodeId {
        let rows = self.weights[weights.0 as usize].rows;
        self.push(Op::MatVec { weights, zero_point, input }, rows)
    }

    /// Per-row squared distances (KMeans/RBF pattern): map subtract, map
    /// square, reduce add, per row.
    pub fn sq_dist_rows(&mut self, weights: WeightId, input: NodeId) -> NodeId {
        let rows = self.weights[weights.0 as usize].rows;
        self.push(Op::SqDist { weights, input }, rows)
    }

    /// Adds an `i32` bias vector.
    pub fn add_bias(&mut self, input: NodeId, bias: Vec<i32>) -> NodeId {
        let w = self.width(input);
        self.push(Op::AddBias { bias, input }, w)
    }

    /// Requantizes accumulators to int8 codes.
    pub fn requant(&mut self, input: NodeId, requant: Requantizer) -> NodeId {
        let w = self.width(input);
        self.push(Op::Requant { requant, input }, w)
    }

    /// Applies a lookup table lane-wise.
    pub fn lookup(&mut self, input: NodeId, lut: LutId) -> NodeId {
        let w = self.width(input);
        self.push(Op::Lut { lut, input }, w)
    }

    /// Lane-wise `> 0` test producing 0/1.
    pub fn greater_zero(&mut self, input: NodeId) -> NodeId {
        let w = self.width(input);
        self.push(Op::GreaterZero { input }, w)
    }

    /// Concatenates vectors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn concat(&mut self, inputs: Vec<NodeId>) -> NodeId {
        assert!(!inputs.is_empty(), "concat needs at least one input");
        let w = inputs.iter().map(|&n| self.width(n)).sum();
        self.push(Op::Concat { inputs }, w)
    }

    /// Extracts a lane range.
    pub fn slice(&mut self, input: NodeId, start: usize, len: usize) -> NodeId {
        self.push(Op::Slice { input, start, len }, len)
    }

    /// Reads persistent state.
    pub fn state_read(&mut self, state: StateId) -> NodeId {
        let w = self.states[state.0 as usize].width;
        self.push(Op::StateRead { state }, w)
    }

    /// Writes persistent state (pass-through value).
    pub fn state_write(&mut self, state: StateId, input: NodeId) -> NodeId {
        let w = self.width(input);
        self.push(Op::StateWrite { state, input }, w)
    }

    /// Marks a node as a program output.
    pub fn output(&mut self, node: NodeId) {
        self.outputs.push(node);
    }

    /// Declares the number of outer-loop iterations available for
    /// unrolling (Table 7); defaults to 1.
    pub fn outer_iters(&mut self, iters: usize) {
        self.outer_iters = iters.max(1);
    }

    /// Declares serial recurrence steps per packet (LSTM history length);
    /// defaults to 1.
    pub fn sequence_steps(&mut self, steps: usize) {
        self.sequence_steps = steps.max(1);
    }

    /// Validates and returns the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural invariant.
    pub fn finish(self) -> Result<Graph, String> {
        let g = Graph {
            nodes: self.nodes,
            weights: self.weights,
            luts: self.luts,
            states: self.states,
            outputs: self.outputs,
            outer_iters: self.outer_iters,
            sequence_steps: self.sequence_steps,
        };
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_perceptron() {
        let mut b = GraphBuilder::new();
        let x = b.input(4);
        let w = b.weights("w", 2, 4, vec![1i8; 8]);
        let dot = b.map_reduce_rows(w, x, 0);
        let act = b.map_max_const(dot, 0);
        b.output(act);
        let g = b.finish().expect("valid");
        assert_eq!(g.nodes().len(), 3);
        assert_eq!(g.input_width(), 4);
        assert_eq!(g.weight_bytes(), 8);
    }

    #[test]
    fn rejects_graph_without_output() {
        let mut b = GraphBuilder::new();
        b.input(4);
        assert!(b.finish().is_err());
    }

    #[test]
    fn rejects_graph_without_input() {
        let mut b = GraphBuilder::new();
        let c = b.constant(vec![1, 2, 3]);
        b.output(c);
        assert!(b.finish().is_err());
    }

    #[test]
    fn rejects_two_inputs() {
        let mut b = GraphBuilder::new();
        let x = b.input(4);
        b.input(4);
        b.output(x);
        assert!(b.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn weights_shape_checked() {
        let mut b = GraphBuilder::new();
        b.weights("w", 2, 4, vec![0i8; 7]);
    }

    #[test]
    #[should_panic(expected = "256 entries")]
    fn lut_size_checked() {
        let mut b = GraphBuilder::new();
        b.lut(vec![0i8; 255]);
    }

    #[test]
    fn slice_bounds_validated() {
        let mut b = GraphBuilder::new();
        let x = b.input(4);
        let s = b.slice(x, 2, 5);
        b.output(s);
        assert!(b.finish().is_err());
    }

    #[test]
    fn state_round_trip_builds() {
        let mut b = GraphBuilder::new();
        let x = b.input(2);
        let h = b.state("h", 2);
        let prev = b.state_read(h);
        let sum = b.map(MapOp::Add, x, prev);
        let wr = b.state_write(h, sum);
        b.output(wr);
        let g = b.finish().expect("valid");
        assert_eq!(g.states().len(), 1);
    }

    #[test]
    fn concat_and_slice_widths() {
        let mut b = GraphBuilder::new();
        let x = b.input(3);
        let c = b.constant(vec![7, 8]);
        let cat = b.concat(vec![x, c]);
        assert_eq!(b.width(cat), 5);
        let s = b.slice(cat, 1, 2);
        b.output(s);
        assert!(b.finish().is_ok());
    }
}
