//! Property tests pinning the vectorized kernels to the scalar
//! references.
//!
//! The chunked multi-accumulator [`taurus_ir::kernels`] forms must be
//! **bit-identical** to the sequential folds for every input: wrapping
//! `i32` addition is associative/commutative, so reassociating the
//! accumulation cannot change the result — these tests make that claim
//! executable over adversarial lengths (empty rows, non-multiples of
//! the lane width) and operands steered to overflow `i32` repeatedly.

use proptest::prelude::*;
use taurus_ir::kernels::{
    matvec_row, matvec_row_scalar, matvec_rows_wide, sqdist_row, sqdist_row_scalar,
    sqdist_rows_wide, LANES, ROW_BLOCK,
};

/// Maps a selector to a length straddling every chunking boundary:
/// empty, partial chunk, exact chunks, chunks + remainder.
fn adversarial_len(sel: usize, extra: usize) -> usize {
    match sel % 7 {
        0 => 0,
        1 => 1 + extra % (LANES - 1),
        2 => LANES,
        3 => LANES + 1,
        4 => 2 * LANES - 1,
        5 => 2 * LANES,
        _ => extra % 64,
    }
}

/// Salts a lane vector with extreme operands (`i32::MIN`/`i32::MAX`)
/// so partial products and accumulators wrap many times.
fn salt_extremes(x: &mut [i32], mask: u64) {
    for (i, v) in x.iter_mut().enumerate() {
        match (mask >> (i % 32)) & 3 {
            1 => *v = i32::MAX,
            2 => *v = i32::MIN,
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matvec_vector_equals_scalar(
        sel in 0usize..7,
        extra in 0usize..64,
        seed in any::<u64>(),
        mask in any::<u64>(),
        zero_point in any::<i32>(),
    ) {
        let n = adversarial_len(sel, extra);
        let row: Vec<i8> = (0..n).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as i8).collect();
        let mut x: Vec<i32> =
            (0..n).map(|i| (seed.wrapping_mul(0x9E37 + i as u64) >> 7) as i32).collect();
        salt_extremes(&mut x, mask);
        prop_assert_eq!(matvec_row(&row, &x, zero_point), matvec_row_scalar(&row, &x, zero_point));
    }

    #[test]
    fn sqdist_vector_equals_scalar(
        sel in 0usize..7,
        extra in 0usize..64,
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let n = adversarial_len(sel, extra);
        let row: Vec<i8> = (0..n).map(|i| (seed.wrapping_mul(i as u64 + 5) >> 9) as i8).collect();
        let mut x: Vec<i32> =
            (0..n).map(|i| (seed.wrapping_mul(0xABCD + i as u64) >> 3) as i32).collect();
        salt_extremes(&mut x, mask);
        prop_assert_eq!(sqdist_row(&row, &x), sqdist_row_scalar(&row, &x));
    }

    #[test]
    fn widened_row_groups_equal_per_row_scalar(
        rows in 0usize..3 * ROW_BLOCK + 2,
        cols in 1usize..24,
        seed in any::<u64>(),
        mask in any::<u64>(),
        zero_point in -128i32..128,
    ) {
        let bank: Vec<i8> =
            (0..rows * cols).map(|i| (seed.wrapping_mul(i as u64 + 3) >> 11) as i8).collect();
        let wide: Vec<i32> = bank.iter().map(|&w| i32::from(w)).collect();
        let mut x: Vec<i32> =
            (0..cols).map(|j| (seed.wrapping_mul(0x5DEECE + j as u64) >> 5) as i32).collect();
        salt_extremes(&mut x, mask);

        let mut got = vec![0i32; rows];
        matvec_rows_wide(&wide, cols, &x, zero_point, &mut got);
        for r in 0..rows {
            let want = matvec_row_scalar(&bank[r * cols..(r + 1) * cols], &x, zero_point);
            prop_assert_eq!(got[r], want, "matvec row {}", r);
        }

        let mut got = vec![0i32; rows];
        sqdist_rows_wide(&wide, cols, &x, &mut got);
        for r in 0..rows {
            let want = sqdist_row_scalar(&bank[r * cols..(r + 1) * cols], &x);
            prop_assert_eq!(got[r], want, "sqdist row {}", r);
        }
    }

    /// Mismatched row/x lengths follow the scalar zip semantics (sum
    /// over the shorter of the two).
    #[test]
    fn length_mismatch_follows_zip_semantics(
        row in collection::vec(any::<i8>(), 0..40),
        x in collection::vec(any::<i32>(), 0..40),
        zero_point in -8i32..8,
    ) {
        prop_assert_eq!(matvec_row(&row, &x, zero_point), matvec_row_scalar(&row, &x, zero_point));
        prop_assert_eq!(sqdist_row(&row, &x), sqdist_row_scalar(&row, &x));
    }
}
