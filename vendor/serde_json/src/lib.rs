//! Offline stub of `serde_json`.
//!
//! The vendored `serde` is a marker-trait shim with no data model, so
//! this crate cannot actually serialize; every entry point returns
//! [`Error::Unsupported`]. Callers that persist optional JSON artifacts
//! (e.g. `taurus-bench`'s `save_json`) treat the `Err` as "skip the
//! sidecar file". Swap the vendored path deps for the real crates to get
//! genuine JSON output.

use core::fmt;

/// Serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The vendored offline stub cannot serialize.
    Unsupported,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json is stubbed in this hermetic build; swap vendor/serde_json for the real crate")
    }
}

impl std::error::Error for Error {}

/// Would serialize `value` to compact JSON; the offline stub always
/// returns [`Error::Unsupported`].
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(Error::Unsupported)
}

/// Would serialize `value` to pretty-printed JSON; the offline stub
/// always returns [`Error::Unsupported`].
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(Error::Unsupported)
}
