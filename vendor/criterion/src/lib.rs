//! Offline mini benchmark harness.
//!
//! API-compatible with the `criterion` surface this workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! sampling it runs a fixed warm-up then measures a calibrated batch and
//! prints mean ns/iter — enough to eyeball regressions and to keep
//! `cargo bench` compiling and running hermetically.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Drives one benchmark's iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark: brief warm-up, calibration to ~50 ms,
    /// then a measured batch; prints mean ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up + calibration: grow the batch until it costs ≥ 10 ms.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Measured run at ~5× the calibrated batch.
        let mut b = Bencher { iters: iters.saturating_mul(5).max(1), elapsed: Duration::ZERO };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:<40} {ns:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        c.bench_function("smoke/count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }
}
