//! Offline mini property-testing harness.
//!
//! API-compatible with the subset of `proptest` this workspace uses:
//! the `proptest! { fn name(x in strategy, ...) { .. } }` macro,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range strategies,
//! `proptest::collection::vec`, and `ProptestConfig`. Unlike the real
//! crate there is no shrinking; failures report the generated inputs via
//! the assertion message, and generation is deterministic (seeded from
//! the test name) so CI failures reproduce locally.

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = u128::from(rng.next_u64()) % span;
                ((self.start as i128) + r as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Full-range strategy for a primitive, from [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// `any::<T>()`: uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Test-run configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` idiom needs in scope.

    pub use crate::collection;
    pub use crate::{any, Any, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Property assertion; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; panics on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5i32..9, f in 0.0f64..1.0) {
            prop_assert!((-5..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn exact_vec_length(v in collection::vec(any::<i8>(), 12)) {
            prop_assert_eq!(v.len(), 12);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
