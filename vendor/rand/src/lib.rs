//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment is hermetic (no crates.io access), so the
//! workspace vendors the exact surface it uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom::shuffle`].
//! The generator is xoshiro256** (public domain reference algorithm)
//! seeded through SplitMix64 — deterministic, fast, and statistically
//! strong enough for the synthetic workloads and property tests here.
//! Swap this path dependency for the real crate to reproduce published
//! numbers bit-for-bit against upstream `StdRng`.

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let r = u128::from(rng.next_u64()) % span;
                ((lo as i128) + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Types producible by [`Rng::gen`] (uniform over the type's standard
/// domain: `[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (mirrors `rand::seq`).

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_ranges() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = r.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..10_000).map(|_| r.gen()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle moved something");
    }
}
