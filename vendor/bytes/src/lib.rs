//! Offline, API-compatible subset of the `bytes` crate: cheaply clonable
//! [`Bytes`] views over shared buffers, a growable [`BytesMut`], and the
//! big-endian [`Buf`]/[`BufMut`] cursor traits — exactly the surface the
//! wire-format code in `taurus-pisa` uses.

use std::sync::Arc;

/// Read cursor over a byte source (big-endian getters).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write cursor over a growable byte sink (big-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply clonable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self { data: data.into(), pos: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: data.into(), pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { data: src.to_vec() }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_slice(&[1, 2, 3]);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 10);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16(), 0x1234);
        assert_eq!(bytes.get_u32(), 0xDEADBEEF);
        let mut rest = [0u8; 3];
        bytes.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert!(bytes.is_empty());
    }

    #[test]
    fn clone_keeps_cursor_independent() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.get_u16();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 4);
    }
}
