//! Offline marker-trait subset of `serde`.
//!
//! The build environment has no crates.io access, so this shim keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations and
//! `impl Serialize` bounds compiling without pulling in the real crate.
//! The traits are implemented for *every* type via blanket impls and the
//! derives are no-ops; actual serialization is provided by the real
//! `serde`/`serde_json` when the vendored path deps are swapped for
//! registry versions. `serde_json` in this workspace returns
//! `Err(Unsupported)` accordingly.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`; satisfied by every
/// type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
