//! Cross-crate integration tests: the invariants that make the
//! reproduction trustworthy, checked through the public API only.

use taurus_cgra::CgraSim;
use taurus_compiler::{compile, frontend, CompileOptions, GridConfig};
use taurus_core::apps::AnomalyDetector;
use taurus_core::e2e::{build_detector_from_trace, extract_stream_features, run_table8};
use taurus_dataset::kdd::{FeatureView, KddGenerator};
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_dataset::IotGenerator;
use taurus_hw_model::{grid_report, SwitchChip};
use taurus_ml::svm::SvmConfig;
use taurus_ml::{KMeans, QuantizedKMeans, QuantizedSvm, Svm};

/// The pipeline-equivalence chain, end to end: float model → int8 golden
/// model → IR graph → compiled grid program → cycle-level simulation,
/// with the last three stages bit-identical.
#[test]
fn dnn_hardware_path_matches_golden_model_bit_for_bit() {
    let detector = AnomalyDetector::train_default(100, 2_000);
    let mut sim = CgraSim::shared(std::sync::Arc::clone(&detector.program));
    let mut gen = KddGenerator::new(101);
    let ds = gen.binary_dataset(300, FeatureView::Dnn6);
    for x in ds.features() {
        let mut row = x.clone();
        detector.standardizer.apply_row(&mut row);
        let codes = detector.quantized.quantize_input(&row);
        let golden: Vec<i32> =
            detector.quantized.infer_codes(&codes).iter().map(|&c| i32::from(c)).collect();
        let lanes: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
        let hw = sim.process(&lanes).outputs.concat();
        assert_eq!(hw, golden);
    }
}

#[test]
fn kmeans_and_svm_hardware_paths_match_golden_models() {
    // KMeans on the IoT task.
    let mut iot = IotGenerator::new(102);
    let ds = iot.multiclass_dataset(800);
    let km = KMeans::fit_supervised(ds.features(), ds.labels(), 5);
    let qkm = QuantizedKMeans::quantize(&km, ds.features());
    let kp = compile(
        &frontend::kmeans_to_graph(&qkm),
        &GridConfig::default(),
        &CompileOptions::default(),
    )
    .expect("kmeans fits");
    let mut ksim = CgraSim::new(&kp);
    for x in ds.features().iter().take(200) {
        let codes = qkm.quantize_input(x);
        let lanes: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
        assert_eq!(ksim.process(&lanes).outputs[0][0] as usize, qkm.predict_codes(&codes));
    }

    // RBF SVM on the KDD task.
    let mut kdd = KddGenerator::new(103);
    let sds = kdd.binary_dataset(1_000, FeatureView::Svm8);
    let svm = Svm::train(sds.features(), sds.labels(), &SvmConfig::default());
    let qsvm = QuantizedSvm::quantize(&svm, sds.features());
    let sp =
        compile(&frontend::svm_to_graph(&qsvm), &GridConfig::default(), &CompileOptions::default())
            .expect("svm fits");
    let mut ssim = CgraSim::new(&sp);
    for x in sds.features().iter().take(200) {
        let codes = qsvm.quantize_input(x);
        let lanes: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
        assert_eq!(ssim.process(&lanes).outputs[0][0] as usize, qsvm.predict_codes(&codes));
    }
}

/// Table 7's invariant through the public API: unrolling trades area for
/// initiation interval exactly.
#[test]
fn unrolling_trades_area_for_line_rate() {
    let g = taurus_ir::microbench::conv1d();
    let grid = GridConfig::default();
    let mut prev_cus = 0usize;
    for (unroll, ii) in [(1usize, 8u32), (2, 4), (4, 2), (8, 1)] {
        let p = compile(&g, &grid, &CompileOptions { unroll: Some(unroll), max_cus: None })
            .expect("fits");
        assert_eq!(p.timing.initiation_interval, ii, "unroll {unroll}");
        assert!(p.resources.cus > prev_cus);
        prev_cus = p.resources.cus;
        // Functional equivalence under time multiplexing.
        let mut sim = CgraSim::new(&p);
        let x: Vec<i32> = (0..9).collect();
        let out = sim.process(&x).outputs.concat();
        let expect: Vec<i32> = (0..8).map(|i| 3 * x[i as usize] - 2 * x[i as usize + 1]).collect();
        assert_eq!(out, expect);
    }
}

/// §5.1.1's headline: the full MapReduce grid costs ≈4.8 mm² and adds
/// ≈3.8 % chip area across four pipelines.
#[test]
fn grid_overhead_matches_paper_headline() {
    let r = grid_report(&GridConfig::default(), &SwitchChip::default(), 0.1);
    assert!((r.area_mm2 - 4.8).abs() < 0.3, "{} mm²", r.area_mm2);
    assert!((r.area_overhead_pct - 3.8).abs() < 0.4, "{} %", r.area_overhead_pct);
}

/// The §5.2.2 headline: same trace, same features — Taurus detects orders
/// of magnitude more anomalous packets than the sampled control plane.
#[test]
fn taurus_beats_control_plane_by_orders_of_magnitude() {
    let detector = build_detector_from_trace(104, 800);
    let records = KddGenerator::new(105).take(600);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 105, ..Default::default() });
    let rows = run_table8(&detector, &trace, &[1e-3]);
    let row = &rows[0];
    assert!(row.taurus.detected_pct > 30.0, "taurus {}", row.taurus.detected_pct);
    assert!(
        row.taurus.detected_pct > 20.0 * row.baseline.detected_pct.max(0.01),
        "taurus {} vs baseline {}",
        row.taurus.detected_pct,
        row.baseline.detected_pct
    );
    // Latency gap: switch path is ~100 ns; the baseline's sample-to-rule
    // loop is tens of milliseconds when it installs anything at all.
    assert!(row.taurus.mean_latency_ns < 1_000.0);
}

/// The full experiment path is deterministic under fixed seeds.
#[test]
fn end_to_end_is_deterministic() {
    let run = || {
        let records = KddGenerator::new(106).take(150);
        let trace = PacketTrace::expand(records, &TraceConfig { seed: 106, ..Default::default() });
        extract_stream_features(&trace)
    };
    assert_eq!(run(), run());
}

/// Recurrent models serialize on state feedback: latency and II scale
/// with the history window, which keeps the LSTM below line rate.
#[test]
fn lstm_recurrence_scales_with_history() {
    let lstm = taurus_ml::Lstm::new(&taurus_ml::LstmConfig { input: 4, hidden: 8, classes: 3 }, 1);
    let grid = GridConfig::default();
    let lat = |steps: usize| {
        let g = frontend::lstm_to_graph(&lstm, steps, 4.0);
        compile(&g, &grid, &CompileOptions::default()).expect("fits").timing
    };
    let t2 = lat(2);
    let t6 = lat(6);
    assert!((t6.latency_ns / t2.latency_ns - 3.0).abs() < 0.01, "3× steps ⇒ 3× latency");
    assert!(t2.initiation_interval > 1, "recurrence is below line rate");
}

/// Weights-vs-flow-rules (§3): the deployed DNN's parameters are a few
/// hundred bytes, orders of magnitude below rule-table equivalents.
#[test]
fn weights_are_small() {
    let detector = AnomalyDetector::train_default(107, 500);
    assert!(detector.weight_bytes() < 1_000, "{} B", detector.weight_bytes());
}

/// The generality claim (Table 1): one builder-constructed switch hosts
/// two distinct [`taurus_core::TaurusApp`]s — the anomaly DNN and the
/// SYN-flood scorer — with independent per-app counters, and dropping
/// one app from the deployment changes neither survivor's counters.
#[test]
fn one_switch_hosts_two_apps_with_independent_counters() {
    use taurus_core::apps::SynFloodDetector;
    use taurus_core::SwitchBuilder;

    let detector = AnomalyDetector::train_default(108, 1_500);
    let syn = SynFloodDetector::default_deployment();
    let records = KddGenerator::new(109).take(100);
    let trace = PacketTrace::expand(records, &TraceConfig::default());

    let mut both = SwitchBuilder::new().register(&detector).register(&syn).build();
    let mut solo = SwitchBuilder::new().register(&syn).build();
    for tp in trace.packets.iter().take(1_000) {
        both.process_trace_packet(tp);
        solo.process_trace_packet(tp);
    }

    let report = both.report();
    assert_eq!(report.apps.len(), 2);
    let [ad, sf] = &report.apps[..] else { panic!("two apps") };
    assert_eq!(ad.name, "anomaly-detection");
    assert_eq!(sf.name, "syn-flood");
    assert_eq!(ad.counters.packets, report.packets);
    assert_eq!(sf.counters.packets, report.packets);
    assert!(ad.counters.ml_packets > 0);
    assert!(sf.counters.ml_packets > 0);

    // Isolation: the SYN app behaves identically with or without a
    // co-hosted DNN (its pipeline, registers, and engine are its own).
    assert_eq!(solo.report().apps[0].counters, sf.counters);
}
