//! Property test over the whole stack: random MLP topologies, trained
//! briefly on random data, must survive quantize → lower → compile →
//! simulate with outputs bit-identical to the integer golden model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taurus_cgra::CgraSim;
use taurus_compiler::{compile, frontend, CompileOptions, GridConfig};
use taurus_fixed::Activation;
use taurus_ml::mlp::{Mlp, MlpConfig, OutputHead, TrainParams};
use taurus_ml::QuantizedMlp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_mlps_survive_the_full_pipeline(
        seed in 0u64..1_000,
        inputs in 2usize..8,
        hidden1 in 2usize..12,
        hidden2 in 0usize..8,
        act_pick in 0usize..3,
    ) {
        let hidden = match act_pick {
            0 => Activation::Relu,
            1 => Activation::LeakyRelu,
            _ => Activation::TanhExp,
        };
        let mut layers = vec![inputs, hidden1];
        if hidden2 > 1 {
            layers.push(hidden2);
        }
        layers.push(1);
        let cfg = MlpConfig { layers, hidden, head: OutputHead::Sigmoid };

        // Brief training on random blobs so weights are non-degenerate.
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f32>> = (0..60)
            .map(|i| {
                let c = if i % 2 == 0 { -1.0 } else { 1.0 };
                (0..inputs).map(|_| c + rng.gen_range(-0.5..0.5)).collect()
            })
            .collect();
        let y: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let mut mlp = Mlp::new(&cfg, seed);
        mlp.train(&x, &y, &TrainParams { epochs: 3, ..TrainParams::default() });

        // Quantize → IR → grid → simulate; must equal the golden model.
        let q = QuantizedMlp::quantize(&mlp, &x);
        let graph = frontend::mlp_to_graph(&q);
        prop_assert!(graph.validate().is_ok());
        let program = compile(&graph, &GridConfig::default(), &CompileOptions::default())
            .expect("small MLPs always fit");
        let mut sim = CgraSim::new(&program);
        for xi in x.iter().take(20) {
            let codes = q.quantize_input(xi);
            let golden: Vec<i32> = q.infer_codes(&codes).iter().map(|&c| i32::from(c)).collect();
            let lanes: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
            let hw = sim.process(&lanes).outputs.concat();
            prop_assert_eq!(hw, golden);
        }
    }
}
