//! Golden snapshot of the Table 8 end-to-end metrics.
//!
//! The whole stack — synthetic KDD records, trace expansion, stream
//! feature extraction, DNN training, int8 quantization, MapReduce
//! compilation, cycle-level CGRA simulation, and the control-plane
//! baseline's event simulation — is deterministic by construction
//! (seeded vendored RNG, no hash-map iteration in any result path).
//! This test pins that property end to end: a small `run_table8`
//! configuration must serialize to *exactly* the bytes stored in
//! `results/table8_golden.json`.
//!
//! If an intentional change shifts the numbers (model tweaks, feature
//! changes, baseline scheduling), regenerate the fixture and commit it:
//!
//! ```bash
//! TAURUS_REGEN_GOLDEN=1 cargo test --test golden_table8
//! ```
//!
//! An *unintentional* diff here means a semantics change leaked into
//! the data path — treat it like a failing determinism test.

use std::path::PathBuf;

use taurus::core::e2e::{build_detector_from_trace, run_table8};
use taurus::dataset::kdd::KddGenerator;
use taurus::dataset::trace::{PacketTrace, TraceConfig};
use taurus_bench::json::ToJson;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results").join("table8_golden.json")
}

fn rendered_rows() -> String {
    let detector = build_detector_from_trace(4242, 600);
    let records = KddGenerator::new(777).take(250);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 777, ..Default::default() });
    let rows = run_table8(&detector, &trace, &[1e-3, 1e-2]);
    assert_eq!(rows.len(), 2);
    let mut text = rows.to_json().pretty();
    text.push('\n');
    text
}

#[test]
fn table8_metrics_match_the_golden_fixture_bit_for_bit() {
    let rendered = rendered_rows();
    let path = fixture_path();
    if std::env::var_os("TAURUS_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             `TAURUS_REGEN_GOLDEN=1 cargo test --test golden_table8`",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "Table 8 metrics diverged from results/table8_golden.json — if intentional, \
         regenerate with `TAURUS_REGEN_GOLDEN=1 cargo test --test golden_table8`"
    );
}

#[test]
fn table8_run_is_reproducible_within_a_process() {
    // The snapshot's premise: two identical runs produce identical bytes.
    assert_eq!(rendered_rows(), rendered_rows());
}
