//! Quickstart: express a MapReduce program, compile it onto the Taurus
//! grid, and run packets through the cycle-level simulator.
//!
//! Run with: `cargo run --example quickstart`

use taurus_cgra::CgraSim;
use taurus_compiler::{compile, CompileOptions, GridConfig};
use taurus_ir::{GraphBuilder, ReduceOp};

fn main() {
    // 1. Build the paper's Fig. 3 pattern: a 16-input perceptron.
    //    Map(multiply) → Reduce(add) → ReLU, as a MapReduce dataflow graph.
    let mut b = GraphBuilder::new();
    let x = b.input(16);
    let weights: Vec<i8> = (0..16).map(|i| if i % 2 == 0 { 3 } else { -1 }).collect();
    let w = b.weights("neuron0", 1, 16, weights.clone());
    let dot = b.map_reduce_rows(w, x, 0); // Map ×, Reduce +
    let relu = b.map_max_const(dot, 0); // Map max(0, ·)
    b.output(relu);
    let graph = b.finish().expect("valid MapReduce program");

    // 2. Compile: split, place, and route it on the default grid
    //    (16 lanes × 4 stages per CU; 12×10 grid at 3:1 CU:MU; 1 GHz).
    let program = compile(&graph, &GridConfig::default(), &CompileOptions::default())
        .expect("perceptron fits easily");
    println!("compiled: {} CUs, {} MUs", program.resources.cus, program.resources.mus);
    println!(
        "latency: {} ns at line rate 1/{} (paper's 16-input inner product: 23 ns)",
        program.timing.latency_ns, program.timing.initiation_interval
    );

    // 3. Stream packets through the cycle-level simulator.
    let mut sim = CgraSim::new(&program);
    for packet in 0..3 {
        let features: Vec<i32> = (0..16).map(|i| (packet * 3 + i) % 30 - 10).collect();
        let result = sim.process(&features);
        println!(
            "packet {packet}: features {:?}… → verdict {} ({} cycles)",
            &features[..4],
            result.outputs[0][0],
            result.latency_cycles
        );
    }

    // 4. The same program also has a reference interpreter — outputs are
    //    bit-identical (the repo's equivalence tests enforce it).
    let mut interp = taurus_ir::Interpreter::new(&graph);
    let check: Vec<i32> = (0..16).map(|i| i % 30 - 10).collect();
    let a = interp.run_flat(&check);
    let b2 = sim.process(&check).outputs.concat();
    assert_eq!(a, b2);
    println!("interpreter and CGRA agree bit-for-bit ✓");

    // 5. Standalone reduce example: arg-min over lanes (the KMeans
    //    nearest-centroid pattern).
    let mut b = GraphBuilder::new();
    let x = b.input(5);
    let nearest = b.reduce(ReduceOp::ArgMin, x);
    b.output(nearest);
    let g = b.finish().expect("valid");
    let mut interp = taurus_ir::Interpreter::new(&g);
    println!("argmin([9, 2, 7, 1, 5]) = {}", interp.run_flat(&[9, 2, 7, 1, 5])[0]);
}
