//! The paper's §5.2.2 case study end to end: train the 4-layer
//! anomaly-detection DNN on synthetic NSL-KDD-like traffic, deploy it as
//! an int8 MapReduce program on the switch, and compare per-packet
//! detection against the sampled control-plane baseline.
//!
//! Run with: `cargo run --release --example anomaly_detection`

use taurus_core::apps::SynFloodDetector;
use taurus_core::e2e::{build_detector_from_trace, run_table8};
use taurus_core::SwitchBuilder;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};

fn main() {
    // 1. Train on stream features extracted by the same register-stage
    //    logic the switch runs (the paper's methodology: model and data
    //    plane see identical features).
    println!("training the 6 → 12 → 6 → 3 → 1 DNN on stream features…");
    let detector = build_detector_from_trace(7, 2_000);
    println!(
        "offline F1 = {:.1} (paper: 71.1); weights = {} B (vs ~12 MB of flow rules, §3)",
        detector.offline_f1,
        detector.weight_bytes()
    );
    println!(
        "compiled DNN: {} CUs, {} MUs, {:.0} ns latency (paper: 221 ns), line rate 1/{}",
        detector.program.resources.cus,
        detector.program.resources.mus,
        detector.program.timing.latency_ns,
        detector.program.timing.initiation_interval
    );

    // 2. Build an evaluation trace the detector has never seen.
    let records = KddGenerator::new(99).take(1_200);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 99, ..Default::default() });
    println!(
        "\nevaluation trace: {} packets ({:.1}% anomalous) at {:.1} Gb/s",
        trace.packets.len(),
        trace.anomalous_fraction() * 100.0,
        trace.rate_gbps()
    );

    // 3. Taurus vs control-plane baseline at two sampling rates.
    let rows = run_table8(&detector, &trace, &[1e-4, 1e-2]);
    for row in &rows {
        println!(
            "\nsampling {:>5.0e}: baseline detected {:6.3}% (F1 {:5.2}) after {:5.1} ms \
             sample-to-rule",
            row.sampling_rate,
            row.baseline.detected_pct,
            row.baseline.f1_percent,
            row.baseline.all_ms,
        );
        println!(
            "               Taurus   detected {:6.2}% (F1 {:5.2}) at {:.0} ns per packet",
            row.taurus.detected_pct, row.taurus.f1_percent, row.taurus.mean_latency_ns,
        );
        let ratio = row.taurus.detected_pct / row.baseline.detected_pct.max(1e-6);
        println!("               → Taurus catches {ratio:.0}× more anomalous packets");
    }

    // 4. The same switch hosts a second app (Table 1's DoS row) beside
    //    the DNN — one SwitchBuilder, per-app counters.
    let mut switch = SwitchBuilder::new()
        .register(&detector)
        .register(&SynFloodDetector::default_deployment())
        .build();
    for tp in &trace.packets {
        switch.process_trace_packet(tp);
    }
    println!("\nmulti-app deployment over the same trace:");
    for app in switch.report().apps {
        println!(
            "  {:>17}: {:6} pkts, {:6} through ML, {:5} dropped",
            app.name, app.counters.packets, app.counters.ml_packets, app.counters.dropped
        );
    }
}
