//! Sharded multi-core hosting: scale one Taurus deployment across N
//! switch replicas without changing its semantics. The runtime routes
//! packets by flow-consistent hashing, batches them over bounded SPSC
//! queues to one worker thread per shard, and merges the per-shard
//! reports — and the merged report equals the single-threaded switch's
//! report *exactly* (this example checks it).
//!
//! The trace is fed in fixed-size segments via `PacketTrace::batches`,
//! the streaming-driver pattern: flow state persists across
//! `run_packets` calls, so a driver never has to hold a whole trace —
//! and exactness still holds end to end.
//!
//! Run with: `cargo run --release --example sharded_runtime`

use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::SwitchBuilder;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::RuntimeBuilder;

const SEGMENT: usize = 4_096;

fn main() {
    println!("training the anomaly-detection DNN…");
    let detector = AnomalyDetector::train_default(11, 2_000);
    let syn_flood = SynFloodDetector::default_deployment();

    let records = KddGenerator::new(99).take(2_000);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    println!(
        "trace: {} packets, {:.1}% anomalous\n",
        trace.packets.len(),
        trace.anomalous_fraction() * 100.0
    );

    // The sequential reference device.
    let mut switch = SwitchBuilder::new().register(&detector).register(&syn_flood).build();
    for tp in &trace.packets {
        switch.process_trace_packet(tp);
    }
    let golden = switch.report();

    // The same deployment, sharded 4 ways, fed as a stream of
    // fixed-size ingest segments.
    let mut runtime = RuntimeBuilder::new()
        .shards(4)
        .batch_size(128)
        .register(&detector)
        .register(&syn_flood)
        .build();
    let mut segments = 0usize;
    let mut report = None;
    for segment in trace.batches(SEGMENT) {
        report = Some(runtime.run_packets(segment));
        segments += 1;
    }
    let report = report.expect("trace is non-empty");
    println!("streamed {segments} segments of <= {SEGMENT} packets\n");

    println!("shard  packets  dropped  flagged");
    for s in &report.shards {
        // `s.report` is the replica's cumulative view across segments.
        println!(
            "{:>5}  {:>7}  {:>7}  {:>7}",
            s.shard, s.report.packets, s.report.dropped, s.report.flagged
        );
    }
    println!(
        "\nmerged: {} packets, {} ML packets, {} dropped, {} flagged",
        report.merged.packets,
        report.merged.ml_packets,
        report.merged.dropped,
        report.merged.flagged
    );
    for app in &report.merged.apps {
        println!(
            "  {:<18} packets {:>6}  ml {:>6}  dropped {:>6}",
            app.name, app.counters.packets, app.counters.ml_packets, app.counters.dropped
        );
    }

    assert_eq!(report.merged, golden, "sharding must not change semantics");
    println!("\nexact: merged report == sequential switch report ✓");
}
