//! The IoT traffic-classification application (Table 5's `IoT KMeans`):
//! cluster 11 device-traffic features into five categories, quantize,
//! compile to the MapReduce grid, and verify the hardware path agrees
//! with the golden model.
//!
//! Run with: `cargo run --release --example iot_classification`

use taurus_cgra::CgraSim;
use taurus_compiler::{compile, frontend, CompileOptions, GridConfig};
use taurus_dataset::IotGenerator;
use taurus_ml::{KMeans, QuantizedKMeans};

fn main() {
    // 1. Synthesize device traffic and fit one centroid per category.
    let mut gen = IotGenerator::new(5);
    let ds = gen.multiclass_dataset(4_000);
    let (train, test) = ds.split(0.8);
    let km = KMeans::fit_supervised(train.features(), train.labels(), 5);
    println!(
        "float KMeans accuracy: {:.1}% over 5 device categories",
        km.accuracy(test.features(), test.labels()) * 100.0
    );

    // 2. Quantize to int8 and lower to MapReduce IR: per-centroid squared
    //    distance (map subtract/square, reduce add) then an arg-min.
    let qkm = QuantizedKMeans::quantize(&km, train.features());
    println!("quantized accuracy:    {:.1}%", qkm.accuracy(test.features(), test.labels()) * 100.0);
    let graph = frontend::kmeans_to_graph(&qkm);
    let program =
        compile(&graph, &GridConfig::default(), &CompileOptions::default()).expect("kmeans fits");
    println!(
        "compiled: {} CUs, {} MUs, {:.0} ns (paper: 61 ns), line rate 1/{}",
        program.resources.cus,
        program.resources.mus,
        program.timing.latency_ns,
        program.timing.initiation_interval
    );

    // 3. The switch path must agree with the golden model on every input.
    let mut sim = CgraSim::new(&program);
    let mut agree = 0usize;
    let n = test.len().min(500);
    for (x, _) in test.iter().take(n) {
        let codes = qkm.quantize_input(x);
        let lanes: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
        let hw = sim.process(&lanes).outputs[0][0] as usize;
        if hw == qkm.predict_codes(&codes) {
            agree += 1;
        }
    }
    println!("hardware vs golden model agreement: {agree}/{n} (must be {n}/{n})");
    assert_eq!(agree, n);

    // 4. Per-category breakdown on the hardware path.
    let names = ["Camera", "Plug", "Hub", "Sensor", "NonIoT"];
    let mut confusion = taurus_ml::ConfusionMatrix::new(5);
    for (x, y) in test.iter() {
        confusion.record(y, qkm.predict(x));
    }
    println!("\nper-category recall:");
    for (c, name) in names.iter().enumerate() {
        let total: u64 = (0..5).map(|p| confusion.get(c, p)).sum();
        let hit = confusion.get(c, c);
        println!("  {name:>7}: {:.1}%", hit as f64 / total.max(1) as f64 * 100.0);
    }
}
