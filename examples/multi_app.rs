//! Multi-app hosting: the paper's central claim (Table 1, Fig. 6) is
//! that *one* data-plane architecture serves *many* per-packet ML
//! applications. This example builds one switch hosting the §5.2.2
//! anomaly-detection DNN and the SYN-flood scorer side by side — and a
//! second switch running the same apps on the threshold backend to show
//! engine selection.
//!
//! Run with: `cargo run --release --example multi_app`

use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{EngineBackend, SwitchBuilder};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};

fn main() {
    println!("training the anomaly-detection DNN…");
    let detector = AnomalyDetector::train_default(11, 2_000);
    let syn_flood = SynFloodDetector::default_deployment();
    println!(
        "compiled apps: DNN {:.0} ns / {} CUs, SYN scorer {:.0} ns / {} CUs",
        detector.program.timing.latency_ns,
        detector.program.resources.cus,
        syn_flood.program.timing.latency_ns,
        syn_flood.program.resources.cus,
    );

    // One switch, two apps, both on the cycle-level CGRA simulator.
    let mut switch = SwitchBuilder::new().register(&detector).register(&syn_flood).build();

    let records = KddGenerator::new(12).take(800);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 12, ..Default::default() });
    for tp in &trace.packets {
        switch.process_trace_packet(tp);
    }

    println!(
        "\n{} packets through {} hosted apps; {} dropped by the combined verdict",
        trace.packets.len(),
        switch.app_count(),
        switch.report().dropped
    );
    println!("per-app counters (independent pipelines):");
    for app in switch.report().apps {
        println!(
            "  {:>17} [{:?}, {:?}]: {:6} pkts, {:6} ML, {:5} dropped",
            app.name,
            app.reaction,
            app.policy,
            app.counters.packets,
            app.counters.ml_packets,
            app.counters.dropped
        );
    }
    println!("slowest hosted ML block: {} ns per packet", switch.ml_latency_ns());

    // Engine selection: the same apps deploy onto the threshold backend
    // (a heuristic baseline — no compiled program executed).
    let mut heuristic = SwitchBuilder::new()
        .backend(EngineBackend::Threshold)
        .register(&detector)
        .register(&syn_flood)
        .build();
    for tp in &trace.packets {
        heuristic.process_trace_packet(tp);
    }
    println!(
        "\nthreshold-backend deployment drops {} (heuristic, {} ns ML path)",
        heuristic.report().dropped,
        heuristic.ml_latency_ns()
    );
}
