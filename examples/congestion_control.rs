//! The Indigo-style LSTM congestion controller (Table 5's largest
//! model): train a small LSTM policy on synthetic congestion traces,
//! lower one decision step to the grid, and compare decision intervals
//! against the software deployment the paper cites (10 ms → ~805 ns).
//!
//! Run with: `cargo run --release --example congestion_control`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taurus_compiler::{compile, frontend, CompileOptions, GridConfig};
use taurus_ml::lstm::{Lstm, LstmConfig};

/// Synthesizes congestion episodes: sequences of (queue depth, RTT
/// gradient, throughput) → the correct cwnd action (0 = decrease,
/// 1 = hold, 2 = increase).
fn make_episodes(n: usize, len: usize, seed: u64) -> (Vec<Vec<Vec<f32>>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let regime = i % 3; // draining / stable / filling queue
        let drift = match regime {
            0 => -0.25,
            1 => 0.0,
            _ => 0.25,
        };
        let mut queue = 0.5f32;
        let seq: Vec<Vec<f32>> = (0..len)
            .map(|_| {
                queue = (queue + drift * 0.2 + rng.gen_range(-0.15..0.15)).clamp(0.0, 1.0);
                let rtt_grad = drift + rng.gen_range(-0.3..0.3);
                let tput = 1.0 - queue * 0.5 + rng.gen_range(-0.1..0.1);
                vec![queue, rtt_grad, tput]
            })
            .collect();
        seqs.push(seq);
        // Action mirrors the regime: filling → decrease, stable → hold,
        // draining → increase.
        labels.push(match regime {
            0 => 2,
            1 => 1,
            _ => 0,
        });
    }
    (seqs, labels)
}

fn main() {
    // 1. Train the policy.
    let (seqs, labels) = make_episodes(300, 10, 1);
    let cfg = LstmConfig { input: 3, hidden: 16, classes: 3 };
    let mut lstm = Lstm::new(&cfg, 2);
    println!("training a {}-unit LSTM congestion policy…", cfg.hidden);
    lstm.train(&seqs, &labels, 15, 0.03, 3);
    let acc = lstm.accuracy(&seqs, &labels);
    println!("policy accuracy: {:.1}% over 3 cwnd actions", acc * 100.0);

    // 2. Lower one decision (a 10-step history window) to the grid.
    let graph = frontend::lstm_to_graph(&lstm, 10, 4.0);
    let program = compile(
        &graph,
        &GridConfig::default(),
        &CompileOptions { max_cus: Some(60), ..Default::default() },
    )
    .expect("policy fits in the LSTM area budget");
    println!(
        "compiled: {} CUs, {} MUs, decision every {:.0} ns",
        program.resources.cus, program.resources.mus, program.timing.latency_ns
    );

    // 3. The paper's comparison: Indigo in software decides every 10 ms;
    //    on Taurus every ~805 ns. Report our equivalent speedup.
    let software_interval_ns = 10e6;
    let speedup = software_interval_ns / program.timing.latency_ns;
    println!(
        "software Indigo decides every 10 ms → Taurus every {:.0} ns: {speedup:.0}× more \
         frequent control decisions (paper: ~12,000×)",
        program.timing.latency_ns
    );

    // 4. Drive the compiled policy with live state via the simulator.
    let mut sim = taurus_cgra::CgraSim::new(&program);
    let params = taurus_fixed::quant::QuantParams::symmetric(4.0);
    for (name, queue, grad) in [("draining", 0.1f32, -0.4f32), ("filling", 0.9, 0.5)] {
        let features: Vec<i32> = [queue, grad, 1.0 - queue * 0.5]
            .iter()
            .map(|&v| i32::from(params.quantize(v)))
            .collect();
        let action = sim.process(&features).outputs[0][0];
        let action_name = ["decrease", "hold", "increase"][action.clamp(0, 2) as usize];
        println!("  {name} queue → hardware action: {action_name}");
    }
}
