//! Online training (§5.2.3): the control plane streams sampled telemetry
//! into SGD and pushes weight updates to the data plane; the deployed
//! model's F1 improves over milliseconds-to-seconds depending on the
//! sampling rate (Figs. 13 and 14).
//!
//! Run with: `cargo run --release --example online_training`

use taurus_controlplane::training::{final_f1, run_online_training, time_to_f1, TrainingRunConfig};
use taurus_core::e2e::{build_detector_from_trace, extract_stream_features};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_ml::mlp::MlpConfig;
use taurus_ml::Mlp;

fn main() {
    // Feature pools from a trace, standardized like the deployed model's.
    let detector = build_detector_from_trace(21, 1_200);
    let records = KddGenerator::new(22).take(1_200);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 22, ..Default::default() });
    let samples = extract_stream_features(&trace);
    let xs: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| {
            let mut row = s.features.clone();
            detector.standardizer.apply_row(&mut row);
            row
        })
        .collect();
    let ys: Vec<usize> = samples.iter().map(|s| usize::from(s.anomalous)).collect();
    let half = xs.len() / 2;
    let (pool_x, eval_x) = xs.split_at(half);
    let (pool_y, eval_y) = ys.split_at(half);

    println!("online training from a fresh (untrained) model:\n");
    for rate in [1e-4, 1e-3, 1e-2] {
        let mut model = Mlp::new(&MlpConfig::anomaly_dnn(), 3);
        let curve = run_online_training(
            &mut model,
            pool_x,
            pool_y,
            eval_x,
            eval_y,
            &TrainingRunConfig { sampling_rate: rate, rounds: 25, ..Default::default() },
        );
        // Skip the pre-training point: a lucky random init can sit above
        // the threshold at t≈0 without saying anything about training.
        let reach = time_to_f1(&curve[1..], 40.0)
            .map(|t| format!("{t:.2} s"))
            .unwrap_or_else(|| "not reached".into());
        println!(
            "  sampling {rate:>5.0e}: F1 reaches 40 after {reach:>12}, final F1 {:.1}",
            final_f1(&curve)
        );
    }
    println!(
        "\nThe Fig. 13 shape: each 10× increase in sampling rate shrinks convergence\n\
         time ~10× — training happens off the critical path while the data plane\n\
         keeps deciding per-packet with the last installed weights."
    );
}
